//! Beyond the paper: the cost of crash tolerance under each protocol
//! family — checkpoint size and capture time, rollback latency, and lost
//! work — measured by killing one node mid-run on SOR and recovering it
//! from its last barrier checkpoint (`DESIGN.md` §8).
//!
//! For one representative implementation per family (EC-time, LRC-diff,
//! HLRC-diff, ALRC-diff; `--impls` restricts the set) the bin prints a
//! `pre` row (the fault-free baseline) and a `post` row (the same run with
//! a deterministic mid-run crash), asserts the two are canonically
//! equivalent — identical contents, traffic and per-node statistics — and
//! reports the recovery economics: how many checkpoints were cut, their
//! total encoded bytes, the simulated time spent capturing them, and the
//! rollback's restore and lost-work latencies.  `BENCH_recovery.json` at
//! the repo root records the trajectory across commits.
//!
//! Usage: `cargo run --release -p dsm-bench --bin recovery [-- --scale tiny|small|paper --procs N --impls NAME,...]`

use dsm_apps::{run_app_opts, App, AppParams, AppReport, RunOpts, Scale};
use dsm_bench::{print_json_header, print_table, secs, HarnessOpts};
use dsm_core::{FaultPlan, ImplKind, TransportKind};
use dsm_tests::canon_app;

/// One implementation's fault-free and crashed-and-recovered runs.
struct Pair {
    kind: ImplKind,
    pre: AppReport,
    post: AppReport,
    host_pre_ms: f64,
    host_post_ms: f64,
}

fn row_json(scale: &str, nprocs: usize, which: &str, kind: ImplKind, r: &AppReport, host_ms: f64) {
    println!(
        "{{\"bench\":\"recovery\",\"row\":\"{which}\",\"impl\":\"{}\",\"scale\":\"{scale}\",\
         \"procs\":{nprocs},\"sim_s\":{:.6},\"messages\":{},\"bytes\":{},\"verified\":{},\
         \"checkpoints\":{},\"checkpoint_bytes\":{},\"ckpt_sim_ns\":{},\
         \"crashes\":{},\"undo_applied\":{},\"restored_words\":{},\
         \"restore_sim_ns\":{},\"lost_sim_ns\":{},\"host_ms\":{host_ms:.1}}}",
        kind.name(),
        r.time.as_secs_f64(),
        r.traffic.messages,
        r.traffic.bytes,
        r.verified,
        r.recovery.checkpoints,
        r.recovery.checkpoint_bytes,
        r.recovery.ckpt_ns,
        r.recovery.crashes,
        r.recovery.undo_applied,
        r.recovery.restored_words,
        r.recovery.restore_ns,
        r.recovery.lost_ns,
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    let scale_name = match opts.scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    print_json_header(
        "recovery",
        "SOR with one node killed mid-run and rolled back to its last barrier \
         checkpoint; pre = fault-free baseline, post = crashed and recovered",
    );

    // One representative per family: the strongest combination of each
    // (the table3 winners' column picks).
    let families = [
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ];
    let kinds = opts.filter_nonempty(&families);

    // SOR runs `iterations` red/black pairs plus one final barrier; crash
    // in the middle of that episode sequence, on a node that owns an
    // interior band when there are enough processors.
    let barriers = AppParams::at(opts.scale).sor.iterations as u64 * 2 + 1;
    let fault = FaultPlan::KillAt {
        node: 1 % opts.nprocs as u32,
        barrier: barriers / 2,
    };

    let mut pairs = Vec::new();
    for &kind in &kinds {
        let t0 = std::time::Instant::now();
        let pre = run_app_opts(App::Sor, kind, opts.nprocs, opts.scale, RunOpts::default());
        let host_pre_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let post = run_app_opts(
            App::Sor,
            kind,
            opts.nprocs,
            opts.scale,
            RunOpts {
                transport: TransportKind::Simulated,
                fault,
            },
        );
        let host_post_ms = t1.elapsed().as_secs_f64() * 1e3;

        assert!(pre.verified, "{kind}: fault-free run failed verification");
        assert!(post.verified, "{kind}: recovered run failed verification");
        assert_eq!(post.recovery.crashes, 1, "{kind}: the fault never fired");
        assert_eq!(
            canon_app(&pre),
            canon_app(&post),
            "{kind}: crashed-and-recovered run is not equivalent to the baseline"
        );

        row_json(scale_name, opts.nprocs, "pre", kind, &pre, host_pre_ms);
        row_json(scale_name, opts.nprocs, "post", kind, &post, host_post_ms);
        pairs.push(Pair {
            kind,
            pre,
            post,
            host_pre_ms,
            host_post_ms,
        });
    }

    let cells: Vec<Vec<String>> = pairs
        .iter()
        .map(|p| {
            let rec = &p.post.recovery;
            vec![
                p.kind.name().to_string(),
                secs(p.pre.time),
                secs(p.post.time),
                rec.checkpoints.to_string(),
                format!("{:.1}", rec.checkpoint_bytes as f64 / 1e3),
                format!("{:.1}", rec.ckpt_ns as f64 / 1e3),
                format!("{:.1}", rec.restore_ns as f64 / 1e3),
                format!("{:.1}", rec.lost_ns as f64 / 1e3),
                format!("{:.0}/{:.0}", p.host_pre_ms, p.host_post_ms),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Crash, checkpoint, recover: SOR with one mid-run crash ({})",
            opts.describe()
        ),
        &[
            "Impl",
            "Pre (s)",
            "Post (s)",
            "Ckpts",
            "Ckpt KB",
            "Ckpt us",
            "Restore us",
            "Lost us",
            "Host ms",
        ],
        &cells,
    );
}
