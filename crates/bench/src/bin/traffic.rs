//! Section 7.2 traffic statistics: message counts and megabytes transferred
//! for the best EC and best LRC implementation of every application (the
//! quantities quoted in the per-application analysis, e.g. "EC-time transfers
//! 9.5 MB while LRC-diff transfers 29.9 MB for Barnes-Hut").

use dsm_bench::{best, check, print_table, run_family, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    for app in table_apps() {
        let ec_reports = run_family(app, &ImplKind::ec_all(), opts);
        let lrc_reports = run_family(app, &ImplKind::lrc_all(), opts);
        for r in ec_reports.iter().chain(lrc_reports.iter()) {
            check(r);
        }
        let ec = best(&ec_reports);
        let lrc = best(&lrc_reports);
        rows.push(vec![
            app.name().to_string(),
            ec.kind.name(),
            format!("{}", ec.traffic.messages),
            format!("{:.2}", ec.traffic.megabytes()),
            lrc.kind.name(),
            format!("{}", lrc.traffic.messages),
            format!("{:.2}", lrc.traffic.megabytes()),
            format!("{}", lrc.traffic.access_misses),
        ]);
    }
    print_table(
        &format!(
            "Section 7.2: Messages and Data Transferred (best implementations, {})",
            opts.describe()
        ),
        &[
            "Application",
            "EC impl",
            "EC msgs",
            "EC MB",
            "LRC impl",
            "LRC msgs",
            "LRC MB",
            "LRC misses",
        ],
        &rows,
    );
}
