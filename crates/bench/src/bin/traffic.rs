//! Section 7.2 traffic statistics: message counts and megabytes transferred
//! for the best EC, best LRC, best HLRC and best ALRC implementation of
//! every application (the quantities quoted in the per-application analysis,
//! e.g. "EC-time transfers 9.5 MB while LRC-diff transfers 29.9 MB for
//! Barnes-Hut"), plus the miss counts of the invalidate-protocol families.
//!
//! Before the table, one JSON row per region of each family's best report
//! surfaces the per-page sharing aggregates (publishes, misses, diff bytes,
//! distinct writers) the adaptive controller decides from.

use dsm_apps::AppReport;
use dsm_bench::{
    best, check, opt_col, print_json_header, print_table, run_family, table_apps, HarnessOpts,
};
use dsm_core::ImplKind;

/// Emits one JSON row per region of the report with the sharing aggregates
/// behind the table's summary numbers.
fn print_sharing_rows(r: &AppReport, opts: &HarnessOpts) {
    for s in &r.sharing {
        println!(
            "{{\"bench\":\"traffic\",\"app\":\"{}\",\"impl\":\"{}\",\"procs\":{},\
             \"region\":\"{}\",\"pages\":{},\"publishes\":{},\"misses\":{},\
             \"diff_bytes\":{},\"distinct_writers\":{}}}",
            r.app.name(),
            r.kind.name(),
            opts.nprocs,
            s.region,
            s.pages,
            s.publishes,
            s.misses,
            s.diff_bytes,
            s.distinct_writers,
        );
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    print_json_header(
        "traffic",
        "per-region page-sharing aggregates for each family's best implementation",
    );
    let mut rows = Vec::new();
    let name_of = |r: Option<&AppReport>| opt_col(r, |r| r.kind.name());
    let msgs_of = |r: Option<&AppReport>| opt_col(r, |r| r.traffic.messages.to_string());
    let mb_of = |r: Option<&AppReport>| opt_col(r, |r| format!("{:.2}", r.traffic.megabytes()));
    let misses_of = |r: Option<&AppReport>| opt_col(r, |r| r.traffic.access_misses.to_string());
    for app in table_apps() {
        let ec_reports = run_family(app, &ImplKind::ec_all(), &opts);
        let lrc_reports = run_family(app, &ImplKind::lrc_all(), &opts);
        let hlrc_reports = run_family(app, &ImplKind::hlrc_all(), &opts);
        let alrc_reports = run_family(app, &ImplKind::adaptive_all(), &opts);
        for r in ec_reports
            .iter()
            .chain(lrc_reports.iter())
            .chain(hlrc_reports.iter())
            .chain(alrc_reports.iter())
        {
            check(r);
        }
        let ec = best(&ec_reports);
        let lrc = best(&lrc_reports);
        let hlrc = best(&hlrc_reports);
        let alrc = best(&alrc_reports);
        for r in [ec, lrc, hlrc, alrc].into_iter().flatten() {
            print_sharing_rows(r, &opts);
        }
        rows.push(vec![
            app.name().to_string(),
            name_of(ec),
            msgs_of(ec),
            mb_of(ec),
            name_of(lrc),
            msgs_of(lrc),
            mb_of(lrc),
            misses_of(lrc),
            name_of(hlrc),
            msgs_of(hlrc),
            mb_of(hlrc),
            misses_of(hlrc),
            name_of(alrc),
            msgs_of(alrc),
            mb_of(alrc),
            misses_of(alrc),
        ]);
    }
    print_table(
        &format!(
            "Section 7.2: Messages and Data Transferred (best implementations, {})",
            opts.describe()
        ),
        &[
            "Application",
            "EC impl",
            "EC msgs",
            "EC MB",
            "LRC impl",
            "LRC msgs",
            "LRC MB",
            "LRC misses",
            "HLRC impl",
            "HLRC msgs",
            "HLRC MB",
            "HLRC misses",
            "ALRC impl",
            "ALRC msgs",
            "ALRC MB",
            "ALRC misses",
        ],
        &rows,
    );
}
