//! Section 7.2 traffic statistics: message counts and megabytes transferred
//! for the best EC, best LRC and best HLRC implementation of every
//! application (the quantities quoted in the per-application analysis, e.g.
//! "EC-time transfers 9.5 MB while LRC-diff transfers 29.9 MB for
//! Barnes-Hut"), plus the miss counts of the two invalidate-protocol
//! families.

use dsm_apps::AppReport;
use dsm_bench::{best, check, opt_col, print_table, run_family, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    let name_of = |r: Option<&AppReport>| opt_col(r, |r| r.kind.name());
    let msgs_of = |r: Option<&AppReport>| opt_col(r, |r| r.traffic.messages.to_string());
    let mb_of = |r: Option<&AppReport>| opt_col(r, |r| format!("{:.2}", r.traffic.megabytes()));
    let misses_of = |r: Option<&AppReport>| opt_col(r, |r| r.traffic.access_misses.to_string());
    for app in table_apps() {
        let ec_reports = run_family(app, &ImplKind::ec_all(), &opts);
        let lrc_reports = run_family(app, &ImplKind::lrc_all(), &opts);
        let hlrc_reports = run_family(app, &ImplKind::hlrc_all(), &opts);
        for r in ec_reports
            .iter()
            .chain(lrc_reports.iter())
            .chain(hlrc_reports.iter())
        {
            check(r);
        }
        let ec = best(&ec_reports);
        let lrc = best(&lrc_reports);
        let hlrc = best(&hlrc_reports);
        rows.push(vec![
            app.name().to_string(),
            name_of(ec),
            msgs_of(ec),
            mb_of(ec),
            name_of(lrc),
            msgs_of(lrc),
            mb_of(lrc),
            misses_of(lrc),
            name_of(hlrc),
            msgs_of(hlrc),
            mb_of(hlrc),
            misses_of(hlrc),
        ]);
    }
    print_table(
        &format!(
            "Section 7.2: Messages and Data Transferred (best implementations, {})",
            opts.describe()
        ),
        &[
            "Application",
            "EC impl",
            "EC msgs",
            "EC MB",
            "LRC impl",
            "LRC msgs",
            "LRC MB",
            "LRC misses",
            "HLRC impl",
            "HLRC msgs",
            "HLRC MB",
            "HLRC misses",
        ],
        &rows,
    );
}
