//! Table 1: the combinations of write trapping and write collection explored.

use dsm_bench::print_table;
use dsm_core::{Collection, ImplKind, Trapping};

fn main() {
    let cell = |trap: Trapping, coll: Collection| -> String {
        let names: Vec<String> = ImplKind::all()
            .iter()
            .filter(|k| k.trapping() == trap && k.collection() == coll)
            .map(|k| k.name())
            .collect();
        if names.is_empty() {
            "not considered".to_string()
        } else {
            names.join(", ")
        }
    };
    let rows = vec![
        vec![
            "Timestamping".to_string(),
            cell(Trapping::Instrumentation, Collection::Timestamps),
            cell(Trapping::Twinning, Collection::Timestamps),
        ],
        vec![
            "Diffing".to_string(),
            cell(Trapping::Instrumentation, Collection::Diffs),
            cell(Trapping::Twinning, Collection::Diffs),
        ],
    ];
    print_table(
        "Table 1: Combinations of Write Trapping and Write Collection",
        &["Collection \\ Trapping", "Comp. Ins.", "Twinning"],
        &rows,
    );
}
