//! CI matrix smoke: one small application under all nine implementations.
//!
//! Runs SOR at tiny scale on 4 processors under every [`ImplKind`], asserts
//! each run verifies against the sequential output, prints one canonical line
//! per implementation, and diffs the three homeless-LRC lines against the
//! committed golden file (`tests/golden/matrix_smoke_lrc.txt`, shared with
//! the integration-test goldens) — regenerate with `DSM_BLESS_GOLDEN=1`
//! after an intentional behaviour change.  SOR under the LRC family is
//! barrier-structured, so its report is deterministic at any processor count
//! (see `DESIGN.md`, "Determinism").
//!
//! Usage: `cargo run --release -p dsm-bench --bin matrix_smoke`

use std::fmt::Write as _;

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;

const PROCS: usize = 4;

fn canon_line(kind: ImplKind) -> (bool, String) {
    let r = run_app(App::Sor, kind, PROCS, Scale::Tiny);
    let mut line = format!(
        "impl={} verified={} traffic: {}",
        kind.name(),
        r.verified,
        r.traffic
    );
    for i in 0..r.stats.num_nodes() {
        let s = r.stats.node(i);
        write!(
            line,
            " n{i}={}/{}/{}",
            s.messages(),
            s.bytes(),
            s.access_misses
        )
        .expect("write to string");
    }
    line.push('\n');
    (r.verified, line)
}

fn main() {
    let mut all_verified = true;
    let mut lrc_lines = String::new();
    for kind in ImplKind::all() {
        let (verified, line) = canon_line(kind);
        print!("{line}");
        all_verified &= verified;
        if kind.model() == dsm_core::Model::Lrc {
            lrc_lines.push_str(&line);
        }
    }
    assert!(
        all_verified,
        "at least one implementation failed verification"
    );

    dsm_tests::check_golden("matrix_smoke_lrc.txt", &lrc_lines);
    println!("homeless-LRC output matches the committed golden file");
}
