//! CI matrix smoke: one small application under all twelve implementations.
//!
//! Runs SOR at tiny scale on 4 processors under every [`ImplKind`], asserts
//! each run verifies against the sequential output, prints one canonical line
//! per implementation, and diffs the three homeless-LRC lines and the three
//! adaptive-LRC lines against their committed golden files
//! (`tests/golden/matrix_smoke_lrc.txt` and
//! `tests/golden/matrix_smoke_alrc.txt`, shared with the integration-test
//! goldens) — regenerate with `DSM_BLESS_GOLDEN=1` after an intentional
//! behaviour change.  SOR under the LRC family is barrier-structured, so its
//! report is deterministic at any processor count, and the adaptive
//! controller decides from entitlement-visible records only, so its golden is
//! just as stable (see `DESIGN.md`, "Determinism" and "Adaptive policy").
//!
//! Honors `--impls`; a family's golden is only diffed when every member of
//! that family actually ran (a filtered subset cannot reproduce the file).
//!
//! Usage: `cargo run --release -p dsm-bench --bin matrix_smoke [-- --impls NAME,...]`

use std::fmt::Write as _;

use dsm_apps::{run_app, App, Scale};
use dsm_core::{ImplKind, Model};

const PROCS: usize = 4;

fn canon_line(kind: ImplKind) -> (bool, String) {
    let r = run_app(App::Sor, kind, PROCS, Scale::Tiny);
    let mut line = format!(
        "impl={} verified={} traffic: {}",
        kind.name(),
        r.verified,
        r.traffic
    );
    for i in 0..r.stats.num_nodes() {
        let s = r.stats.node(i);
        write!(
            line,
            " n{i}={}/{}/{}",
            s.messages(),
            s.bytes(),
            s.access_misses
        )
        .expect("write to string");
    }
    line.push('\n');
    (r.verified, line)
}

fn main() {
    let opts = dsm_bench::HarnessOpts::from_args();
    let kinds = opts.filter_nonempty(&ImplKind::all());
    let mut all_verified = true;
    let mut lrc_lines = String::new();
    let mut alrc_lines = String::new();
    for &kind in &kinds {
        let (verified, line) = canon_line(kind);
        print!("{line}");
        all_verified &= verified;
        match kind.model() {
            Model::Lrc => lrc_lines.push_str(&line),
            Model::Adaptive => alrc_lines.push_str(&line),
            _ => {}
        }
    }
    assert!(
        all_verified,
        "at least one implementation failed verification"
    );

    let family_complete = |model: Model| {
        kinds.iter().filter(|k| k.model() == model).count()
            == ImplKind::all()
                .iter()
                .filter(|k| k.model() == model)
                .count()
    };
    if family_complete(Model::Lrc) {
        dsm_tests::check_golden("matrix_smoke_lrc.txt", &lrc_lines);
        println!("homeless-LRC output matches the committed golden file");
    }
    if family_complete(Model::Adaptive) {
        dsm_tests::check_golden("matrix_smoke_alrc.txt", &alrc_lines);
        println!("adaptive-LRC output matches the committed golden file");
    }
}
