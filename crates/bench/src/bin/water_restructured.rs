//! Section 7.2, Water restructuring experiment: splitting the molecule record
//! into separate displacement and force arrays and binding a per-processor
//! lock to each processor's displacements lets EC achieve an LRC-like
//! prefetch effect (the paper reports 12.50 s for EC vs 11.45 s for LRC after
//! the change, compared with 18.25 s vs 12.41 s before).

use dsm_apps::water::{self, WaterParams};
use dsm_apps::{AppParams, Scale};
use dsm_bench::{print_table, secs, HarnessOpts};
use dsm_core::ImplKind;

fn run_pair(nprocs: usize, p: &WaterParams) -> Vec<String> {
    let kinds = [ImplKind::ec_ci(), ImplKind::lrc_diff()];
    let mut row = Vec::new();
    for kind in kinds {
        let (result, ok) = water::run(kind, nprocs, p);
        if !ok {
            eprintln!("WARNING: Water under {kind} did not match the sequential output");
        }
        row.push(secs(result.time));
        row.push(format!("{}", result.traffic.messages));
    }
    row
}

fn main() {
    let opts = HarnessOpts::from_args();
    let base = match opts.scale {
        Scale::Paper => AppParams::at(Scale::Paper).water,
        Scale::Small => AppParams::at(Scale::Small).water,
        Scale::Tiny => AppParams::at(Scale::Tiny).water,
    };
    let mut rows = Vec::new();
    let mut row = vec!["original layout".to_string()];
    row.extend(run_pair(opts.nprocs, &base));
    rows.push(row);
    let mut row = vec!["restructured (split arrays)".to_string()];
    row.extend(run_pair(opts.nprocs, &base.clone().restructured()));
    rows.push(row);
    print_table(
        &format!(
            "Section 7.2: Water data-structure restructuring ({})",
            opts.describe()
        ),
        &["Layout", "EC-ci (s)", "EC msgs", "LRC-diff (s)", "LRC msgs"],
        &rows,
    );
}
