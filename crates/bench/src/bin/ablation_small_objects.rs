//! Section 4.2 ablation: eager twinning of small EC objects at write-lock
//! acquire (this paper's improvement) vs. the Midway VM implementation that
//! write-protects every object and takes a fault on the first write.
//!
//! The difference shows up as protection faults and execution time for the
//! applications dominated by small bound objects (Water, Barnes-Hut, IS).

use dsm_apps::{run_app, App, Scale};
use dsm_bench::{print_table, secs, HarnessOpts};
use dsm_core::ImplKind;

fn row(app: App, nprocs: usize, scale: Scale) -> Vec<String> {
    let eager = run_app(app, ImplKind::ec_time(), nprocs, scale);
    std::env::set_var("DSM_NO_SMALL_OBJECTS", "1");
    let faulting = run_app(app, ImplKind::ec_time(), nprocs, scale);
    std::env::remove_var("DSM_NO_SMALL_OBJECTS");
    vec![
        app.name().to_string(),
        secs(eager.time),
        format!("{}", eager.traffic.write_faults),
        secs(faulting.time),
        format!("{}", faulting.traffic.write_faults),
    ]
}

fn main() {
    let opts = HarnessOpts::from_args();
    let rows: Vec<Vec<String>> = [App::Water, App::BarnesHut, App::IntegerSort, App::Quicksort]
        .into_iter()
        .map(|app| row(app, opts.nprocs, opts.scale))
        .collect();
    print_table(
        &format!(
            "Section 4.2: eager small-object twins vs. copy-on-write faults, EC-time ({})",
            opts.describe()
        ),
        &[
            "Application",
            "eager (s)",
            "eager faults",
            "CoW (s)",
            "CoW faults",
        ],
        &rows,
    );
}
