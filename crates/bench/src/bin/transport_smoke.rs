//! CI smoke test for the transport backends: SOR runs over the simulated,
//! channel (real threads) and socket (real loopback connections) transports,
//! and every backend must land on the same final shared-memory contents.
//!
//! SOR's contents are bitwise deterministic (every shared word is written by
//! exactly one processor per barrier-separated phase), so the FNV-1a
//! fingerprint of the simulated run is a golden the other backends must hit
//! exactly.  The replicas' own contents are verified against the engines'
//! master copies inside the transport itself, which panics on divergence.
//! The adaptive implementation additionally broadcasts its migration
//! decisions as control frames; the transports count and fingerprint those
//! on both ends and panic if any replica missed one, so this smoke also
//! round-trips the control path over real threads and real sockets.
//!
//! Usage: `cargo run --release -p dsm-bench --bin transport_smoke [-- --scale tiny|small|paper --procs N]`

use dsm_apps::{run_app, run_app_on, App, Scale};
use dsm_core::{ImplKind, TransportKind};

fn main() {
    let opts = dsm_bench::HarnessOpts::from_args();
    let scale_name = match opts.scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    dsm_bench::print_json_header(
        "transport_smoke",
        "SOR over the channel and socket backends vs the simulated contents golden",
    );
    let kinds = opts.filter_nonempty(&[
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ]);
    for kind in kinds {
        let base = run_app(App::Sor, kind, opts.nprocs, opts.scale);
        assert!(
            base.verified,
            "SOR under {kind}: simulated run not verified"
        );
        for transport in [TransportKind::Channel, TransportKind::SocketLocal(2)] {
            let label = transport.label();
            let r = run_app_on(App::Sor, kind, opts.nprocs, opts.scale, transport);
            assert!(r.verified, "SOR under {kind} over {label}: not verified");
            assert_eq!(
                r.wire.master_fnv, base.wire.master_fnv,
                "SOR under {kind} over {label}: contents diverged from the \
                 simulated golden"
            );
            assert!(
                r.wire.replicas_verified > 0,
                "SOR under {kind} over {label}: no replica verified"
            );
            // The v2 wire accounts every byte as either payload or ordering
            // metadata, and coalesces each epoch's frames into one batch per
            // peer.  The socket run exercises the full serialize → TCP →
            // batch-decode → apply round-trip (the replica verification
            // above proves the decode).  LRC publishes a whole interval's
            // dirty pages at once; EC buffers each release's grant frames
            // until the barrier closes the epoch — so under every model some
            // frames must have ridden an already-open batch.
            assert_eq!(
                r.wire.wire_bytes,
                r.wire.wire_bytes_payload + r.wire.wire_bytes_meta,
                "SOR under {kind} over {label}: byte split does not add up"
            );
            assert!(
                r.wire.frames_coalesced > 0,
                "SOR under {kind} over {label}: no epoch coalescing happened"
            );
            println!(
                "{{\"bench\":\"transport_smoke\",\"impl\":\"{}\",\"backend\":\"{}\",\
                 \"scale\":\"{}\",\"procs\":{},\"contents_fnv\":\"{:016x}\",\
                 \"frames_sent\":{},\"frames_coalesced\":{},\"wire_bytes\":{},\
                 \"wire_bytes_payload\":{},\"wire_bytes_meta\":{},\"replicas_verified\":{}}}",
                kind.name(),
                label,
                scale_name,
                opts.nprocs,
                r.wire.master_fnv,
                r.wire.frames_sent,
                r.wire.frames_coalesced,
                r.wire.wire_bytes,
                r.wire.wire_bytes_payload,
                r.wire.wire_bytes_meta,
                r.wire.replicas_verified,
            );
        }
    }
    eprintln!("transport smoke: all backends agree");
}
