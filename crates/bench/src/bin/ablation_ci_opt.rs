//! Section 8.1 ablation: the compiler optimisation that splits the dirty-bit
//! stores out of the computation loop (the paper reports a 16% improvement
//! for SOR under EC-ci, 5% for SOR+, 2% for Water, and none elsewhere).

use dsm_apps::{run_app, App, Scale};
use dsm_bench::{print_table, secs, HarnessOpts};
use dsm_core::ImplKind;

fn run_at(app: App, nprocs: usize, scale: Scale, naive: bool) -> (String, String) {
    if naive {
        std::env::set_var("DSM_NAIVE_CI", "1");
    } else {
        std::env::remove_var("DSM_NAIVE_CI");
    }
    let r = run_app(app, ImplKind::ec_ci(), nprocs, scale);
    std::env::remove_var("DSM_NAIVE_CI");
    (
        secs(r.time),
        format!("{}", r.stats.total().instrumented_writes),
    )
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    for app in [App::Sor, App::SorPlus, App::Water] {
        let (opt_t, opt_w) = run_at(app, opts.nprocs, opts.scale, false);
        let (naive_t, naive_w) = run_at(app, opts.nprocs, opts.scale, true);
        rows.push(vec![app.name().to_string(), opt_t, opt_w, naive_t, naive_w]);
    }
    print_table(
        &format!(
            "Section 8.1: dirty-bit loop-splitting optimisation under EC-ci ({})",
            opts.describe()
        ),
        &[
            "Application",
            "optimised (s)",
            "instr/node",
            "naive (s)",
            "instr/node",
        ],
        &rows,
    );
}
