//! Table 2: application parameters (data-set sizes).

use dsm_apps::{AppParams, Scale};
use dsm_bench::{print_table, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let p = AppParams::at(opts.scale);
    let paper = AppParams::at(Scale::Paper);
    let rows = vec![
        vec![
            "SOR".into(),
            format!(
                "{}x{} floats, {} iters",
                p.sor.rows, p.sor.cols, p.sor.iterations
            ),
            format!("{}x{} floats", paper.sor.rows, paper.sor.cols),
        ],
        vec![
            "SOR+".into(),
            format!(
                "{}x{} floats (boundary rows shared)",
                p.sor.rows, p.sor.cols
            ),
            format!("{}x{} floats", paper.sor.rows, paper.sor.cols),
        ],
        vec![
            "QS".into(),
            format!(
                "{} integers, cutoff {}",
                p.quicksort.n, p.quicksort.threshold
            ),
            format!(
                "{} integers, cutoff {}",
                paper.quicksort.n, paper.quicksort.threshold
            ),
        ],
        vec![
            "Water".into(),
            format!(
                "{} molecules, {} iterations",
                p.water.molecules, p.water.steps
            ),
            format!(
                "{} molecules, {} iterations",
                paper.water.molecules, paper.water.steps
            ),
        ],
        vec![
            "Barnes-Hut".into(),
            format!("{} bodies, {} iterations", p.barnes.bodies, p.barnes.steps),
            format!(
                "{} bodies, {} iterations",
                paper.barnes.bodies, paper.barnes.steps
            ),
        ],
        vec![
            "IS".into(),
            format!(
                "N = 2^{}, Bmax = 2^{}, {} rankings",
                p.is.keys.ilog2(),
                p.is.buckets.ilog2(),
                p.is.rankings
            ),
            format!(
                "N = 2^{}, Bmax = 2^{}, {} rankings",
                paper.is.keys.ilog2(),
                paper.is.buckets.ilog2(),
                paper.is.rankings
            ),
        ],
        vec![
            "3D-FFT".into(),
            format!(
                "{}x{}x{}, {} iterations",
                p.fft.n1, p.fft.n2, p.fft.n3, p.fft.iterations
            ),
            format!("{}x{}x{}", paper.fft.n1, paper.fft.n2, paper.fft.n3),
        ],
    ];
    print_table(
        &format!("Table 2: Application Parameters ({})", opts.describe()),
        &["Application", "This run", "Paper (Table 2)"],
        &rows,
    );
}
