//! Beyond the paper: the adaptive data policy against every static LRC
//! policy on the mixed-sharing workload (`dsm_apps::mixed`) — a
//! false-sharing phase, a single-writer phase and a migratory-lock phase
//! back to back, so no static policy wins all three.
//!
//! Prints one JSON row per implementation (total simulated traffic, the
//! page-sharing aggregates and the migration counts per target mode), a
//! `table6`-style summary table, and a final JSON verdict row comparing the
//! best adaptive implementation against every static one on total bytes.
//! `BENCH_adaptive.json` at the repo root records the trajectory across
//! commits.
//!
//! Usage: `cargo run --release -p dsm-bench --bin adaptive [-- --scale tiny|small|paper --procs N --impls NAME,...]`

use dsm_apps::mixed::{self, MixedParams};
use dsm_apps::Scale;
use dsm_bench::{print_json_header, print_table, secs, HarnessOpts};
use dsm_core::{ImplKind, Model, PageMode};

struct Row {
    kind: ImplKind,
    time: dsm_core::SimTime,
    messages: u64,
    bytes: u64,
    misses: u64,
    pinned: usize,
    homed: usize,
    unhomed: usize,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let (scale_name, p) = match opts.scale {
        Scale::Tiny => ("tiny", MixedParams::tiny()),
        Scale::Small => ("small", MixedParams::small()),
        Scale::Paper => ("paper", MixedParams::paper()),
    };
    print_json_header(
        "adaptive",
        "mixed-sharing workload (false sharing + single writer + migratory lock), \
         total simulated traffic per LRC-family implementation",
    );
    // The mixed workload is barriers-and-locks only, so the EC family sits
    // this comparison out; every static and adaptive LRC policy runs.
    let mut all: Vec<ImplKind> = ImplKind::lrc_all().to_vec();
    all.extend(ImplKind::hlrc_all());
    all.extend(ImplKind::adaptive_all());
    let kinds = opts.filter_nonempty(&all);

    let mut rows = Vec::new();
    // Host wall time of each implementation's whole run, pooled into one
    // histogram so the verdict row can report the sweep's host-latency shape
    // alongside the simulated-traffic comparison.
    let mut host_lat = dsm_bench::LatencyHistogram::new();
    for &kind in &kinds {
        let t0 = std::time::Instant::now();
        let (r, ok) = mixed::run(kind, opts.nprocs, &p);
        let host = t0.elapsed();
        host_lat.record_duration(host);
        assert!(ok, "{kind}: mixed-workload contents mismatch");
        let count = |m: fn(&PageMode) -> bool| r.migrations.iter().filter(|c| m(&c.mode)).count();
        let row = Row {
            kind,
            time: r.time,
            messages: r.traffic.messages,
            bytes: r.traffic.bytes,
            misses: r.traffic.access_misses,
            pinned: count(|m| matches!(m, PageMode::Pinned(_))),
            homed: count(|m| matches!(m, PageMode::Home(_))),
            unhomed: count(|m| matches!(m, PageMode::Homeless)),
        };
        println!(
            "{{\"bench\":\"adaptive\",\"impl\":\"{}\",\"scale\":\"{}\",\"procs\":{},\
             \"pages\":{},\"iterations\":{},\"sim_s\":{:.6},\"messages\":{},\"bytes\":{},\
             \"access_misses\":{},\"lock_transfers\":{},\
             \"sharing_publishes\":{},\"sharing_misses\":{},\"sharing_diff_bytes\":{},\
             \"max_region_writers\":{},\
             \"migrations_pinned\":{},\"migrations_homed\":{},\"migrations_homeless\":{},\
             \"host_wall_ms\":{:.3}}}",
            kind.name(),
            scale_name,
            opts.nprocs,
            p.pages,
            p.iterations,
            r.time.as_secs_f64(),
            r.traffic.messages,
            r.traffic.bytes,
            r.traffic.access_misses,
            r.traffic.lock_transfers,
            r.traffic.sharing.publishes,
            r.traffic.sharing.misses,
            r.traffic.sharing.diff_bytes,
            r.traffic.sharing.max_region_writers,
            row.pinned,
            row.homed,
            row.unhomed,
            host.as_secs_f64() * 1e3,
        );
        rows.push(row);
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                secs(r.time),
                r.messages.to_string(),
                format!("{:.2}", r.bytes as f64 / 1e6),
                r.misses.to_string(),
                format!("{}/{}/{}", r.pinned, r.homed, r.unhomed),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Mixed-sharing workload: static vs adaptive data policies ({})",
            opts.describe()
        ),
        &[
            "Impl",
            "Time (s)",
            "Msgs",
            "MB",
            "Misses",
            "Pin/Home/Homeless",
        ],
        &cells,
    );

    // The verdict the adaptive policy is judged on: its best implementation
    // must move fewer total bytes than *every* static policy.  Only
    // meaningful when `--impls` left both sides represented and the run had
    // more than one processor (alone, nothing communicates and every policy
    // ties at zero traffic).
    let statics: Vec<&Row> = rows
        .iter()
        .filter(|r| r.kind.model() != Model::Adaptive)
        .collect();
    let adaptive = rows
        .iter()
        .filter(|r| r.kind.model() == Model::Adaptive)
        .min_by_key(|r| r.bytes);
    if opts.nprocs < 2 {
        return;
    }
    if let (Some(a), false) = (adaptive, statics.is_empty()) {
        let beats_all = statics.iter().all(|s| a.bytes < s.bytes);
        let best_static = statics.iter().min_by_key(|s| s.bytes).expect("non-empty");
        // The margin: how many bytes (and what fraction of the best static
        // policy's traffic) adapting saved.  Signed — a regression shows up
        // as a negative margin in the trajectory file, not just a flipped
        // boolean.
        let margin_bytes = best_static.bytes as i64 - a.bytes as i64;
        let margin_pct = if best_static.bytes > 0 {
            margin_bytes as f64 * 100.0 / best_static.bytes as f64
        } else {
            0.0
        };
        println!(
            "{{\"bench\":\"adaptive\",\"row\":\"verdict\",\"scale\":\"{}\",\"procs\":{},\
             \"best_adaptive\":\"{}\",\"best_adaptive_bytes\":{},\
             \"best_static\":\"{}\",\"best_static_bytes\":{},\
             \"margin_bytes\":{},\"margin_pct\":{:.2},\
             \"adaptive_beats_every_static\":{},{}}}",
            scale_name,
            opts.nprocs,
            a.kind.name(),
            a.bytes,
            best_static.kind.name(),
            best_static.bytes,
            margin_bytes,
            margin_pct,
            beats_all,
            host_lat.json_fields("host_run_"),
        );
        assert!(
            beats_all,
            "{} moved {} bytes but static {} moved {}",
            a.kind, a.bytes, best_static.kind, best_static.bytes,
        );
    }
}
