//! Table 3: execution times for the best EC and best LRC implementation of
//! every application, plus the single-processor sequential time and the
//! implementation that achieved the best time ("EC Imp." / "LRC Imp.").

use dsm_apps::sequential_time;
use dsm_bench::{best, check, print_table, run_family, secs, table_apps, HarnessOpts};
use dsm_core::{CostModel, ImplKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let cost = CostModel::atm_lan_1996();
    let mut rows = Vec::new();
    for app in table_apps() {
        let seq = sequential_time(app, opts.scale, &cost);
        let ec_reports = run_family(app, &ImplKind::ec_all(), opts);
        let lrc_reports = run_family(app, &ImplKind::lrc_all(), opts);
        for r in ec_reports.iter().chain(lrc_reports.iter()) {
            check(r);
        }
        let ec = best(&ec_reports);
        let lrc = best(&lrc_reports);
        rows.push(vec![
            app.name().to_string(),
            secs(seq),
            secs(ec.time),
            secs(lrc.time),
            ec.kind.name().replace("EC-", ""),
            lrc.kind.name().replace("LRC-", ""),
            format!("{:.2}", ec.speedup()),
            format!("{:.2}", lrc.speedup()),
        ]);
    }
    print_table(
        &format!(
            "Table 3: Execution Times for EC and LRC (best implementation, {})",
            opts.describe()
        ),
        &[
            "Application",
            "1 proc.",
            "EC",
            "LRC",
            "EC Imp.",
            "LRC Imp.",
            "EC spdup",
            "LRC spdup",
        ],
        &rows,
    );
}
