//! Table 3: execution times for the best EC, best LRC and best HLRC
//! implementation of every application, plus the single-processor sequential
//! time and the implementation that achieved each best time.

use dsm_apps::{sequential_time, AppReport};
use dsm_bench::{best, check, opt_col, print_table, run_family, secs, table_apps, HarnessOpts};
use dsm_core::{CostModel, ImplKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let cost = CostModel::atm_lan_1996();
    let mut rows = Vec::new();
    let time_of = |r: Option<&AppReport>| opt_col(r, |r| secs(r.time));
    let impl_of =
        |r: Option<&AppReport>, prefix: &str| opt_col(r, |r| r.kind.name().replace(prefix, ""));
    let speedup_of = |r: Option<&AppReport>| opt_col(r, |r| format!("{:.2}", r.speedup()));
    for app in table_apps() {
        let seq = sequential_time(app, opts.scale, &cost);
        let ec_reports = run_family(app, &ImplKind::ec_all(), &opts);
        let lrc_reports = run_family(app, &ImplKind::lrc_all(), &opts);
        let hlrc_reports = run_family(app, &ImplKind::hlrc_all(), &opts);
        for r in ec_reports
            .iter()
            .chain(lrc_reports.iter())
            .chain(hlrc_reports.iter())
        {
            check(r);
        }
        let ec = best(&ec_reports);
        let lrc = best(&lrc_reports);
        let hlrc = best(&hlrc_reports);
        rows.push(vec![
            app.name().to_string(),
            secs(seq),
            time_of(ec),
            time_of(lrc),
            time_of(hlrc),
            impl_of(ec, "EC-"),
            impl_of(lrc, "LRC-"),
            impl_of(hlrc, "HLRC-"),
            speedup_of(ec),
            speedup_of(lrc),
            speedup_of(hlrc),
        ]);
    }
    print_table(
        &format!(
            "Table 3: Execution Times for EC, LRC and HLRC (best implementation, {})",
            opts.describe()
        ),
        &[
            "Application",
            "1 proc.",
            "EC",
            "LRC",
            "HLRC",
            "EC Imp.",
            "LRC Imp.",
            "HLRC Imp.",
            "EC spdup",
            "LRC spdup",
            "HLRC spdup",
        ],
        &rows,
    );
}
