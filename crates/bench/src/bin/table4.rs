//! Table 4: execution times for the three EC implementations
//! (EC-ci, EC-time, EC-diff).

use dsm_bench::{check, print_family_times, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    print_family_times(
        "Table 4: Execution Times for Write Trapping / Collection Combinations in EC",
        &ImplKind::ec_all(),
        &table_apps(),
        &opts,
        check,
    );
}
