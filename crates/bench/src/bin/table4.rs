//! Table 4: execution times for the three EC implementations
//! (EC-ci, EC-time, EC-diff).

use dsm_bench::{check, print_table, run_family, secs, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    for app in table_apps() {
        let reports = run_family(app, &ImplKind::ec_all(), opts);
        for r in &reports {
            check(r);
        }
        let mut row = vec![app.name().to_string()];
        row.extend(reports.iter().map(|r| secs(r.time)));
        rows.push(row);
    }
    print_table(
        &format!(
            "Table 4: Execution Times for Write Trapping / Collection Combinations in EC ({})",
            opts.describe()
        ),
        &["Application", "EC-ci", "EC-time", "EC-diff"],
        &rows,
    );
}
