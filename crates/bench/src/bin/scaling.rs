//! Host-performance trajectory of the sharded runtime: wall-clock time vs
//! simulated time at 8, 16 and 32 simulated processors.
//!
//! The paper's numbers are *simulated* seconds; this binary measures what the
//! reproduction itself costs to run, which is what the sharded
//! lock/barrier/region tables are meant to improve — with one cluster-wide
//! mutex, host wall-clock degrades as simulated processors are added even
//! though the simulated time shrinks.  Emits one JSON object per line so the
//! perf trajectory can be collected across commits.
//!
//! Usage: `cargo run --release -p dsm-bench --bin scaling [-- --scale tiny|small|paper]`
//! (`--procs` is ignored; the processor counts are the sweep axis).

use std::time::Instant;

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;

const PROC_COUNTS: [usize; 3] = [8, 16, 32];
const REPS: usize = 3;

fn main() {
    // Reuse the shared flag parser but sweep processor counts ourselves.
    let opts = dsm_bench::HarnessOpts::from_args();
    let scale = opts.scale;
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    dsm_bench::print_json_header(
        "scaling",
        "best-of-3 wall clock vs simulated time at 8/16/32 simulated processors",
    );
    let kinds = opts.filter_nonempty(&[
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ]);
    for app in [App::Sor, App::IntegerSort, App::Water] {
        for &kind in &kinds {
            for nprocs in PROC_COUNTS {
                // Report the fastest of a few repetitions: host scheduling
                // noise only ever slows a run down.
                let mut best_wall_ms = f64::INFINITY;
                let mut report = None;
                for _ in 0..REPS {
                    let start = Instant::now();
                    let r = run_app(app, kind, nprocs, scale);
                    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    if wall_ms < best_wall_ms {
                        best_wall_ms = wall_ms;
                    }
                    report = Some(r);
                }
                let r = report.expect("at least one repetition");
                assert!(r.verified, "{app} under {kind} failed verification");
                let totals = r.stats.total();
                println!(
                    "{{\"bench\":\"scaling\",\"app\":\"{}\",\"impl\":\"{}\",\"scale\":\"{}\",\
                     \"procs\":{},\"wall_ms\":{:.3},\"sim_s\":{:.6},\"messages\":{},\
                     \"bytes\":{},\"lock_transfers\":{},\
                     \"pool_recycled\":{},\"pool_allocated\":{},\
                     \"sharing_publishes\":{},\"sharing_misses\":{},\
                     \"sharing_diff_bytes\":{},\"max_region_writers\":{}}}",
                    app.name(),
                    kind.name(),
                    scale_name,
                    nprocs,
                    best_wall_ms,
                    r.time.as_secs_f64(),
                    r.traffic.messages,
                    r.traffic.bytes,
                    r.traffic.lock_transfers,
                    totals.pool_recycled,
                    totals.pool_allocated,
                    r.traffic.sharing.publishes,
                    r.traffic.sharing.misses,
                    r.traffic.sharing.diff_bytes,
                    r.traffic.sharing.max_region_writers,
                );
            }
        }
    }
}
