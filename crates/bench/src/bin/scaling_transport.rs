//! Scaling sweep of the transport backends: the same synthetic epoch
//! workload as `hotpath`'s epoch benchmark (touch one element per page, then
//! rewrite your slice under a bound lock, so every release publishes), driven
//! over real OS threads (channel backend, 8 → 256 nodes) and real loopback
//! sockets (socket backend, with the replica peers either in-process threads
//! or separate child processes launched by this driver).
//!
//! Host wall-clock, publish rate and bytes-on-wire are emitted as one JSON
//! object per line; `BENCH_transport.json` at the repo root records the
//! trajectory across commits.  Each row carries the workload knobs that
//! produced it (`elems`, `words_per_page`, `epochs`) so points from
//! different sweeps are self-describing.  `wire_bytes` is split into its
//! payload (changed bytes) and metadata (frame headers, delta vector-clock
//! records, run tables, batch framing) parts: the v1 wire sent each frame —
//! with a full O(nodes) vector clock — as its own message, while the v2 wire
//! delta-encodes the clocks against a per-stream baseline and coalesces each
//! epoch's frames into one batch per peer (`frames_coalesced` counts the
//! sends saved), so metadata grows with what changed rather than with the
//! node count.
//!
//! This binary parses its own arguments (`--scale tiny|small|paper`, default
//! small, and `--impls NAME[,NAME...]`, which replaces the default
//! LRC-diff/EC-time pair).  With `--peer` it instead becomes a replica peer
//! process: it binds a loopback listener, prints the port on stdout and
//! serves one session (this is the mode the driver launches as child
//! processes).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use dsm_apps::Scale;
use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, RunResult,
    TransportKind,
};

/// Elements (u32) in the shared region: 16 pages, as in `hotpath`.
const ELEMS: usize = 16 * 1024;

/// Words per page of the region (u32 elements, 4 KiB pages).
const WORDS_PER_PAGE: usize = 1024;

/// One synthetic epoch run over the given transport.  Returns the run result
/// and the host wall-clock in milliseconds.
fn epoch_run(
    kind: ImplKind,
    nprocs: usize,
    iters: usize,
    transport: TransportKind,
) -> (RunResult, f64) {
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = transport;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let region = dsm.alloc_array::<u32>("wire-hot", ELEMS, BlockGranularity::Word);
    dsm.init_array(region, |i| i as u32);
    dsm.bind(LockId::new(0), [region.region().whole()]);
    let per = (ELEMS / nprocs).max(1);
    let start = Instant::now();
    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let mut mine = vec![0u32; per];
        let mut sink = 0u64;
        for it in 0..iters {
            let mut g = ctx.lock(LockId::new(0), LockMode::Exclusive);
            for page in 0..ELEMS / WORDS_PER_PAGE {
                sink = sink.wrapping_add(g.get(region, page * WORDS_PER_PAGE) as u64);
            }
            for (e, slot) in mine.iter_mut().enumerate() {
                *slot = (it + e) as u32;
            }
            g.write_from(region, (me * per).min(ELEMS - per), &mine);
            drop(g);
        }
        std::hint::black_box(sink);
        ctx.barrier(BarrierId::new(0));
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (result, wall_ms)
}

/// One point of the sweep: which implementation ran over which backend at
/// what node and replica-peer count.
struct Point<'a> {
    kind: ImplKind,
    backend: &'a str,
    nodes: usize,
    peers: usize,
}

fn print_row(p: &Point<'_>, scale_name: &str, iters: usize, result: &RunResult, wall_ms: f64) {
    let publishes = result.wire.frames_sent;
    println!(
        "{{\"bench\":\"scaling_transport\",\"impl\":\"{}\",\"backend\":\"{}\",\
         \"scale\":\"{}\",\"nodes\":{},\"peers\":{},\"epochs\":{},\
         \"elems\":{},\"words_per_page\":{},\
         \"frames_sent\":{},\"frames_coalesced\":{},\"wire_bytes\":{},\
         \"wire_bytes_payload\":{},\"wire_bytes_meta\":{},\"replicas_verified\":{},\
         \"wall_ms\":{:.3},\"frames_per_sec\":{:.0},\"contents_fnv\":\"{:016x}\"}}",
        p.kind.name(),
        p.backend,
        scale_name,
        p.nodes,
        p.peers,
        iters,
        ELEMS,
        WORDS_PER_PAGE,
        publishes,
        result.wire.frames_coalesced,
        result.wire.wire_bytes,
        result.wire.wire_bytes_payload,
        result.wire.wire_bytes_meta,
        result.wire.replicas_verified,
        wall_ms,
        publishes as f64 / (wall_ms / 1e3).max(1e-9),
        result.wire.master_fnv,
    );
}

/// Launches one replica peer as a child process (this same binary with
/// `--peer`) and reads the port it bound from its stdout.
fn spawn_peer() -> (Child, String) {
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = Command::new(exe)
        .arg("--peer")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn peer process");
    let stdout = child.stdout.take().expect("peer stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("peer prints its port");
    let port: u16 = line.trim().parse().expect("peer port line");
    (child, format!("127.0.0.1:{port}"))
}

/// Peer-process mode: bind a loopback listener, announce the port and serve
/// one replication session.
fn run_peer() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let port = listener.local_addr().expect("local addr").port();
    println!("{port}");
    std::io::stdout().flush().expect("flush port line");
    dsm_core::serve_transport_peer(listener).expect("peer session");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--peer") {
        run_peer();
        return;
    }
    let mut scale = Scale::Small;
    let mut impls: Option<Vec<ImplKind>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = match args[i + 1].as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => panic!("unknown scale '{other}' (use tiny|small|paper)"),
                };
                i += 2;
            }
            "--impls" if i + 1 < args.len() => {
                let kinds: Vec<ImplKind> = args[i + 1]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|name| ImplKind::from_name(name.trim()).unwrap_or_else(|e| panic!("{e}")))
                    .collect();
                assert!(!kinds.is_empty(), "--impls takes at least one name");
                impls = Some(kinds);
                i += 2;
            }
            other => panic!("unknown argument '{other}' (this bin takes --scale and --impls)"),
        }
    }
    let (scale_name, iters, node_counts, peer_counts): (_, usize, &[usize], &[usize]) = match scale
    {
        Scale::Tiny => ("tiny", 3, &[8, 16], &[2]),
        Scale::Small => ("small", 8, &[8, 16, 32, 64, 128, 256], &[2, 4, 8]),
        Scale::Paper => ("paper", 16, &[8, 16, 32, 64, 128, 256], &[2, 4, 8]),
    };
    // `--impls` replaces the default pair outright (any implementation can
    // drive this synthetic workload, including the adaptive ones, whose
    // control frames then ride the measured wire).
    let kinds = impls.unwrap_or_else(|| vec![ImplKind::lrc_diff(), ImplKind::ec_time()]);
    dsm_bench::print_json_header(
        "scaling_transport",
        "synthetic publish epochs over real threads (channel) and loopback sockets",
    );

    // Threaded sweep: every simulated processor is an OS thread, every
    // publish hands an Arc'd frame to every peer's inbox.
    for &kind in &kinds {
        for &nprocs in node_counts {
            let (result, wall_ms) = epoch_run(kind, nprocs, iters, TransportKind::Channel);
            let p = Point {
                kind,
                backend: "channel",
                nodes: nprocs,
                peers: nprocs,
            };
            print_row(&p, scale_name, iters, &result, wall_ms);
        }
    }

    // Socket sweep, in-process peers: 8 worker nodes publishing to 2-8
    // replica peers over real loopback connections served by threads.
    const SOCKET_NODES: usize = 8;
    for &kind in &kinds {
        for &npeers in peer_counts {
            let (result, wall_ms) = epoch_run(
                kind,
                SOCKET_NODES,
                iters,
                TransportKind::SocketLocal(npeers),
            );
            let p = Point {
                kind,
                backend: "socket-thread",
                nodes: SOCKET_NODES,
                peers: npeers,
            };
            print_row(&p, scale_name, iters, &result, wall_ms);
        }
    }

    // Socket sweep, process peers: the same sweep with every replica peer a
    // separate OS process launched by this driver.
    for &kind in &kinds {
        for &npeers in peer_counts {
            let (children, addrs): (Vec<Child>, Vec<String>) =
                (0..npeers).map(|_| spawn_peer()).unzip();
            let (result, wall_ms) = epoch_run(
                kind,
                SOCKET_NODES,
                iters,
                TransportKind::SocketRemote(addrs),
            );
            for mut child in children {
                let status = child.wait().expect("peer process exit");
                assert!(status.success(), "peer process failed: {status}");
            }
            let p = Point {
                kind,
                backend: "socket-process",
                nodes: SOCKET_NODES,
                peers: npeers,
            };
            print_row(&p, scale_name, iters, &result, wall_ms);
        }
    }
}
