//! Table 6 (beyond the paper): execution times for the three home-based LRC
//! implementations (HLRC-ci, HLRC-time, HLRC-diff) and the three adaptive
//! LRC implementations (ALRC-ci, ALRC-time, ALRC-diff).  Together with
//! tables 4 and 5 this completes the per-implementation comparison across
//! all twelve members of the protocol family.

use dsm_bench::{check, print_family_times, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    let apps = table_apps();
    print_family_times(
        "Table 6: Execution Times for Write Trapping / Collection Combinations in HLRC",
        &ImplKind::hlrc_all(),
        &apps,
        &opts,
        check,
    );
    print_family_times(
        "Table 6 (continued): the Adaptive Data Policy (ALRC) under the Same Combinations",
        &ImplKind::adaptive_all(),
        &apps,
        &opts,
        check,
    );
}
