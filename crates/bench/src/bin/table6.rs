//! Table 6 (beyond the paper): execution times for the three home-based LRC
//! implementations (HLRC-ci, HLRC-time, HLRC-diff).  Together with tables 4
//! and 5 this completes the per-implementation comparison across all nine
//! members of the protocol family.

use dsm_bench::{check, print_family_times, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    print_family_times(
        "Table 6: Execution Times for Write Trapping / Collection Combinations in HLRC",
        &ImplKind::hlrc_all(),
        &table_apps(),
        &opts,
        check,
    );
}
