//! Closed-loop benchmark of the DSM-backed KV/cache tier (`dsm-kvservice`):
//! millions of seeded get/put/cas/delete ops against the sharded store,
//! measured as host throughput plus p50/p99/p999 latency from the
//! log-bucket histogram.
//!
//! The sweep answers the service-shaped version of the paper's question —
//! which protocol family serves which key-sharing pattern best — along four
//! axes:
//!
//! - **deep**: the four headline implementations (EC-time, LRC-diff,
//!   HLRC-diff, ALRC-diff) at 1/4/8 processors over both the simulated and
//!   channel transports, per-op latency, zipf keys, all three mixes;
//! - **fast**: the same implementations on the read-mostly mix with cheap
//!   `Local` reads and batched critical sections — the throughput headline;
//! - **uniform**: the deep implementations with uniform keys at 4
//!   processors (zipf-vs-uniform contrast);
//! - **breadth**: every other implementation of the 12-impl matrix at 4
//!   processors, simulated transport, so the trajectory file covers the
//!   whole matrix.
//!
//! Emits one JSON object per line; `BENCH_kv.json` at the repo root records
//! the trajectory across commits.  Every row carries `p50_ns`/`p99_ns`/
//! `p999_ns` (per op when `lat_unit` is `"op"`, per critical-section batch
//! when `"batch"`) and `ops_per_sec`.  A final verdict row reports the best
//! read-mostly throughput seen.
//!
//! Usage: `cargo run --release -p dsm-bench --bin kv [-- --scale tiny|small|paper --procs N --impls NAME,...]`
//! (`--procs` is ignored: the bin sweeps its own processor counts.)

use std::sync::Mutex;
use std::time::Instant;

use dsm_apps::Scale;
use dsm_bench::{print_json_header, HarnessOpts, LatencyHistogram};
use dsm_core::{BarrierId, Dsm, DsmConfig, ImplKind, TransportKind};
use dsm_kvservice::workload::{KeySampler, MixSpec, XorShift64};
use dsm_kvservice::{KvConfig, KvScratch, KvStats, KvStore, ReadConsistency};

/// Ops per critical-section batch on the batched (fast-path) rows.
const BATCH: usize = 64;

/// Ops per processor between barriers: the barrier closes the wire epoch,
/// bounding how many publish frames the channel transport buffers under the
/// EC family's barrier-flushed coalescing.
const OPS_PER_BARRIER: usize = 4096;

/// The bench's store shape: 16 shards x 2048 slots, 4-word values.  The key
/// space stays at half capacity so puts do not exhaust shards even under the
/// write-heavy mix.
fn bench_config() -> KvConfig {
    KvConfig {
        shard_bits: 4,
        slot_bits: 11,
        value_words: 4,
        base_lock: 0,
    }
}

/// Keys in the sampled id space (half the store's slot capacity).
fn key_space(cfg: &KvConfig) -> u64 {
    (cfg.capacity() / 2) as u64
}

fn ops_per_proc(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 1_024,
        Scale::Small => 8_192,
        Scale::Paper => 65_536,
    }
}

/// One point of the sweep.
struct Point {
    kind: ImplKind,
    backend: &'static str,
    transport: TransportKind,
    procs: usize,
    mix: MixSpec,
    dist: &'static str,
    reads: ReadConsistency,
    batch: usize,
}

struct RowOut {
    ops: u64,
    wall_ms: f64,
    lat: LatencyHistogram,
    stats: KvStats,
}

/// Runs one closed-loop point: every processor replays its own seeded trace
/// in `batch`-op critical sections, recording the host latency of each
/// application into a per-processor histogram, with a barrier every
/// [`OPS_PER_BARRIER`] ops to close wire epochs.
fn run_point(p: &Point, per_proc: usize) -> RowOut {
    let cfg_kv = bench_config();
    let keys = key_space(&cfg_kv);
    let sampler = match p.dist {
        "zipf" => KeySampler::zipf(keys, 0.99),
        _ => KeySampler::uniform(keys),
    };
    let mut cfg = DsmConfig::with_procs(p.kind, p.procs);
    cfg.transport = p.transport.clone();
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let store = KvStore::alloc(&mut dsm, p.kind.model(), cfg_kv);
    let st = store.clone();
    let lat_mx = Mutex::new(LatencyHistogram::new());
    let stats_mx = Mutex::new(KvStats::new(st.config().shards()));
    let mix = p.mix;
    let reads = p.reads;
    let batch = p.batch;
    let barrier_chunks = OPS_PER_BARRIER.div_ceil(batch);
    let start = Instant::now();
    dsm.run(|ctx| {
        let me = ctx.node() as u64;
        // Distinct stream per (processor, mix, distribution) so rows do not
        // replay one another's traces; identical `per_proc` keeps the
        // barrier cadence aligned across processors.
        let seed = (me + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(mix.read_pct as u64)
            .wrapping_add(if matches!(reads, ReadConsistency::Local) {
                0x5eed
            } else {
                0
            });
        let mut rng = XorShift64::new(seed);
        let trace: Vec<_> = (0..per_proc).map(|_| mix.op(&mut rng, &sampler)).collect();
        let mut scratch = KvScratch::new(st.config());
        let mut stats = KvStats::new(st.config().shards());
        let mut local = LatencyHistogram::new();
        for (i, chunk) in trace.chunks(batch).enumerate() {
            let t0 = Instant::now();
            st.apply_batch(ctx, chunk, reads, &mut scratch, &mut stats);
            local.record_duration(t0.elapsed());
            if (i + 1) % barrier_chunks == 0 {
                ctx.barrier(BarrierId::new(0));
            }
        }
        ctx.barrier(BarrierId::new(1));
        lat_mx.lock().unwrap().merge(&local);
        stats_mx.lock().unwrap().merge(&stats);
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RowOut {
        ops: (per_proc * p.procs) as u64,
        wall_ms,
        lat: lat_mx.into_inner().unwrap(),
        stats: stats_mx.into_inner().unwrap(),
    }
}

fn print_row(p: &Point, scale_name: &str, out: &RowOut) {
    let s = &out.stats;
    println!(
        "{{\"bench\":\"kv\",\"impl\":\"{}\",\"backend\":\"{}\",\"scale\":\"{}\",\
         \"procs\":{},\"mix\":\"{}\",\"dist\":\"{}\",\"reads\":\"{}\",\
         \"batch\":{},\"lat_unit\":\"{}\",\"ops\":{},\"wall_ms\":{:.3},\
         \"ops_per_sec\":{:.0},{},\"gets\":{},\"hits\":{},\"puts\":{},\
         \"cas_ok\":{},\"cas_miss\":{},\"deletes\":{}}}",
        p.kind.name(),
        p.backend,
        scale_name,
        p.procs,
        p.mix.name,
        p.dist,
        match p.reads {
            ReadConsistency::Lock => "lock",
            ReadConsistency::Local => "local",
        },
        p.batch,
        if p.batch == 1 { "op" } else { "batch" },
        out.ops,
        out.wall_ms,
        out.ops as f64 / (out.wall_ms / 1e3).max(1e-9),
        out.lat.json_fields(""),
        s.gets,
        s.hits,
        s.puts,
        s.cas_ok,
        s.cas_miss,
        s.deletes,
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    let scale_name = match opts.scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let per_proc = ops_per_proc(opts.scale);
    print_json_header(
        "kv",
        "closed-loop sharded KV tier: seeded zipf/uniform traces, per-op and batched \
         critical sections, host latency histograms",
    );

    let deep = [
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ];
    let deep_sel = opts.filter(&deep);
    let breadth_sel: Vec<ImplKind> = opts
        .filter(&ImplKind::all())
        .into_iter()
        .filter(|k| !deep.contains(k))
        .collect();
    assert!(
        !(deep_sel.is_empty() && breadth_sel.is_empty()),
        "--impls matched no implementation"
    );

    let mut points = Vec::new();
    // Deep sweep: per-op latency across processor counts and transports.
    for &kind in &deep_sel {
        for (backend, transport) in [
            ("simulated", TransportKind::Simulated),
            ("channel", TransportKind::Channel),
        ] {
            for procs in [1usize, 4, 8] {
                for mix in MixSpec::ALL {
                    points.push(Point {
                        kind,
                        backend,
                        transport: transport.clone(),
                        procs,
                        mix,
                        dist: "zipf",
                        reads: ReadConsistency::Lock,
                        batch: 1,
                    });
                }
            }
        }
    }
    // Fast path: local reads + batched critical sections on the read-mostly
    // mix — the arbitration-free serving configuration.
    for &kind in &deep_sel {
        for procs in [1usize, 4, 8] {
            points.push(Point {
                kind,
                backend: "simulated",
                transport: TransportKind::Simulated,
                procs,
                mix: MixSpec::ALL[0],
                dist: "zipf",
                reads: ReadConsistency::Local,
                batch: BATCH,
            });
        }
    }
    // Distribution contrast: uniform keys at 4 processors.
    for &kind in &deep_sel {
        for mix in MixSpec::ALL {
            points.push(Point {
                kind,
                backend: "simulated",
                transport: TransportKind::Simulated,
                procs: 4,
                mix,
                dist: "uniform",
                reads: ReadConsistency::Lock,
                batch: 1,
            });
        }
    }
    // Breadth: the rest of the 12-impl matrix at one representative point.
    for &kind in &breadth_sel {
        for mix in MixSpec::ALL {
            points.push(Point {
                kind,
                backend: "simulated",
                transport: TransportKind::Simulated,
                procs: 4,
                mix,
                dist: "zipf",
                reads: ReadConsistency::Lock,
                batch: 1,
            });
        }
    }

    let mut best_read_mostly: Option<(ImplKind, usize, f64)> = None;
    for p in &points {
        let out = run_point(p, per_proc);
        assert_eq!(
            out.stats.ops(),
            out.ops,
            "{} {} {}p {}: stats dropped ops",
            p.kind,
            p.backend,
            p.procs,
            p.mix.name
        );
        assert!(
            !out.lat.is_empty() && out.lat.quantile(0.99) > 0,
            "{} {} {}p {}: empty latency histogram",
            p.kind,
            p.backend,
            p.procs,
            p.mix.name
        );
        print_row(p, scale_name, &out);
        if p.mix.name == MixSpec::ALL[0].name {
            let tput = out.ops as f64 / (out.wall_ms / 1e3).max(1e-9);
            match best_read_mostly {
                Some((_, _, b)) if tput <= b => {}
                _ => best_read_mostly = Some((p.kind, p.procs, tput)),
            }
        }
    }

    if let Some((kind, procs, tput)) = best_read_mostly {
        println!(
            "{{\"bench\":\"kv\",\"row\":\"verdict\",\"scale\":\"{}\",\
             \"best_read_mostly_impl\":\"{}\",\"best_read_mostly_procs\":{},\
             \"best_read_mostly_ops_per_sec\":{:.0},\
             \"sustains_1m_ops_per_sec\":{}}}",
            scale_name,
            kind.name(),
            procs,
            tput,
            tput >= 1e6,
        );
    }
}
