//! Micro-benchmark of the per-access hot path: shared reads/sec and shared
//! writes/sec of the simulator itself (host throughput, not simulated time).
//!
//! The paper's thesis is that per-access software overhead decides the
//! EC-vs-LRC contest; this binary measures what *our* per-access pipeline
//! costs.  The workload deliberately churns epochs (one acquire/release per
//! sweep) so that LRC's per-page freshness validation — the part the
//! generation-counter fast path and the span APIs optimise — stays on the
//! measured path instead of being amortised away by a single long epoch.
//!
//! Emits one JSON object per line; `BENCH_hotpath.json` at the repo root
//! records the trajectory across commits.
//!
//! Usage: `cargo run --release -p dsm-bench --bin hotpath [-- --scale tiny|small|paper --procs N]`

use std::time::Instant;

use dsm_apps::Scale;
use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};

/// Elements (u32) in the shared region: 16 pages.
const ELEMS: usize = 16 * 1024;

fn sweeps(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 24,
        Scale::Small => 96,
        Scale::Paper => 384,
    }
}

struct Row {
    kind: ImplKind,
    op: &'static str,
    api: &'static str,
    accesses: u64,
    pool_recycled: u64,
    pool_allocated: u64,
    sharing: dsm_sim::SharingSummary,
    wall_ms: f64,
    /// Host latency of each critical section (acquire → release), merged
    /// across processors, from the best repetition.
    lat: dsm_bench::LatencyHistogram,
}

impl Row {
    fn print(&self, scale_name: &str, nprocs: usize) {
        println!(
            "{{\"bench\":\"hotpath\",\"impl\":\"{}\",\"op\":\"{}\",\"api\":\"{}\",\
             \"scale\":\"{}\",\"procs\":{},\"accesses\":{},\"wall_ms\":{:.3},\
             \"accesses_per_sec\":{:.0},\"pool_recycled\":{},\"pool_allocated\":{},\
             {},{}}}",
            self.kind.name(),
            self.op,
            self.api,
            scale_name,
            nprocs,
            self.accesses,
            self.wall_ms,
            self.accesses as f64 / (self.wall_ms / 1e3),
            self.pool_recycled,
            self.pool_allocated,
            sharing_fields(&self.sharing),
            self.lat.json_fields("section_"),
        );
    }
}

/// The per-region sharing aggregates as JSON fields (no braces), shared by
/// every row shape this binary emits.
fn sharing_fields(s: &dsm_sim::SharingSummary) -> String {
    format!(
        "\"sharing_publishes\":{},\"sharing_misses\":{},\
         \"sharing_diff_bytes\":{},\"max_region_writers\":{}",
        s.publishes, s.misses, s.diff_bytes, s.max_region_writers
    )
}

/// One timed run: every processor sweeps the whole region (reads) or its own
/// slice (writes) once per acquire/release epoch.  Returns (accesses, best
/// wall ms of 3 repetitions).
fn measure(kind: ImplKind, nprocs: usize, iters: usize, op: &'static str, slices: bool) -> Row {
    let mut best = f64::INFINITY;
    let mut accesses = 0u64;
    let mut totals = dsm_sim::NodeStats::new();
    let mut sharing = dsm_sim::SharingSummary::default();
    let mut lat = dsm_bench::LatencyHistogram::new();
    for _ in 0..3 {
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).expect("valid config");
        let region = dsm.alloc_array::<u32>("hot", ELEMS, BlockGranularity::Word);
        dsm.init_array(region, |i| i as u32);
        // One lock per processor; under EC nothing is bound to it, so the
        // acquire is pure epoch churn for both models.  The typed accessors
        // are zero-cost wrappers over the raw hot path, so the measured
        // throughput is the same pipeline the apps exercise.
        let per = ELEMS / nprocs;
        let lat_mx = std::sync::Mutex::new(dsm_bench::LatencyHistogram::new());
        let start = Instant::now();
        let result = dsm.run(|ctx| {
            let me = ctx.node();
            let mut buf = vec![0u32; per.max(1)];
            let mut sink = 0u64;
            let mut local = dsm_bench::LatencyHistogram::new();
            for it in 0..iters {
                let t0 = Instant::now();
                {
                    let mut g = ctx.lock(LockId::new(me as u32), LockMode::Exclusive);
                    match (op, slices) {
                        ("read", false) => {
                            for e in 0..ELEMS {
                                sink = sink.wrapping_add(g.get(region, e) as u64);
                            }
                        }
                        ("read", true) => {
                            for chunk in 0..nprocs {
                                g.read_into(region, chunk * per, &mut buf[..per]);
                                sink = sink.wrapping_add(buf[0] as u64);
                            }
                        }
                        ("write", false) => {
                            for e in 0..per {
                                g.set(region, me * per + e, (it + e) as u32);
                            }
                        }
                        ("write", true) => {
                            for (e, slot) in buf[..per].iter_mut().enumerate() {
                                *slot = (it + e) as u32;
                            }
                            g.write_from(region, me * per, &buf[..per]);
                        }
                        _ => unreachable!("op is read|write"),
                    }
                }
                local.record_duration(t0.elapsed());
            }
            std::hint::black_box(sink);
            lat_mx.lock().unwrap().merge(&local);
            ctx.barrier(BarrierId::new(0));
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if wall_ms < best {
            best = wall_ms;
            lat = lat_mx.into_inner().unwrap();
        }
        totals = result.stats.total();
        accesses = totals.shared_accesses;
        sharing = result.traffic.sharing;
    }
    Row {
        kind,
        op,
        api: if slices { "slice" } else { "scalar" },
        accesses,
        pool_recycled: totals.pool_recycled,
        pool_allocated: totals.pool_allocated,
        sharing,
        wall_ms: best,
        lat,
    }
}

/// One timed *epoch* run, measuring the write/publish/apply data plane rather
/// than per-access overhead: every processor, under one shared lock, first
/// touches one element of every page (an LRC access miss applies the *whole*
/// page, so this drives the full miss/apply path for every foreign publish
/// while keeping read-path time negligible), then rewrites its own slice
/// (write trapping + twin creation) and releases (write collection and
/// publication).  The region is bound to the lock so the EC implementations
/// publish and apply through the same cycle (the grant applies the bound
/// data).  Returns the total number of publish events (releases) and the
/// best wall time of 3 repetitions.
fn measure_epoch(
    kind: ImplKind,
    nprocs: usize,
    iters: usize,
) -> (
    u64,
    dsm_sim::NodeStats,
    dsm_sim::SharingSummary,
    f64,
    dsm_bench::LatencyHistogram,
) {
    const WORDS_PER_PAGE: usize = 1024;
    let mut best = f64::INFINITY;
    let mut totals = dsm_sim::NodeStats::new();
    let mut sharing = dsm_sim::SharingSummary::default();
    let mut lat = dsm_bench::LatencyHistogram::new();
    for _ in 0..3 {
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).expect("valid config");
        let region = dsm.alloc_array::<u32>("hot", ELEMS, BlockGranularity::Word);
        dsm.init_array(region, |i| i as u32);
        dsm.bind(LockId::new(0), [region.region().whole()]);
        let per = ELEMS / nprocs;
        let lat_mx = std::sync::Mutex::new(dsm_bench::LatencyHistogram::new());
        let start = Instant::now();
        let result = dsm.run(|ctx| {
            let me = ctx.node();
            let mut mine = vec![0u32; per.max(1)];
            let mut sink = 0u64;
            let mut local = dsm_bench::LatencyHistogram::new();
            for it in 0..iters {
                let t0 = Instant::now();
                let mut g = ctx.lock(LockId::new(0), LockMode::Exclusive);
                for page in 0..ELEMS / WORDS_PER_PAGE {
                    sink = sink.wrapping_add(g.get(region, page * WORDS_PER_PAGE) as u64);
                }
                for (e, slot) in mine[..per].iter_mut().enumerate() {
                    *slot = (it + e) as u32;
                }
                g.write_from(region, me * per, &mine[..per]);
                drop(g);
                local.record_duration(t0.elapsed());
            }
            std::hint::black_box(sink);
            lat_mx.lock().unwrap().merge(&local);
            ctx.barrier(BarrierId::new(0));
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if wall_ms < best {
            best = wall_ms;
            lat = lat_mx.into_inner().unwrap();
        }
        totals = result.stats.total();
        sharing = result.traffic.sharing;
    }
    ((iters * nprocs) as u64, totals, sharing, best, lat)
}

fn print_epoch(kind: ImplKind, scale_name: &str, nprocs: usize, iters: usize) {
    let (publishes, totals, sharing, wall_ms, lat) = measure_epoch(kind, nprocs, iters);
    println!(
        "{{\"bench\":\"hotpath\",\"impl\":\"{}\",\"op\":\"epoch\",\"api\":\"slice\",\
         \"scale\":\"{}\",\"procs\":{},\"epochs\":{},\"publishes\":{},\"accesses\":{},\
         \"wall_ms\":{:.3},\"publishes_per_sec\":{:.0},\
         \"pool_recycled\":{},\"pool_allocated\":{},{},{}}}",
        kind.name(),
        scale_name,
        nprocs,
        iters,
        publishes,
        totals.shared_accesses,
        wall_ms,
        publishes as f64 / (wall_ms / 1e3),
        totals.pool_recycled,
        totals.pool_allocated,
        sharing_fields(&sharing),
        lat.json_fields("epoch_"),
    );
}

fn main() {
    let opts = dsm_bench::HarnessOpts::from_args();
    let scale_name = match opts.scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let iters = sweeps(opts.scale);
    dsm_bench::print_json_header(
        "hotpath",
        "best-of-3 wall clock; per-access read/write sweeps plus write+release+acquire epochs",
    );
    let kinds = opts.filter_nonempty(&[
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ]);
    for kind in kinds {
        for op in ["read", "write"] {
            for slices in [false, true] {
                measure(kind, opts.nprocs, iters, op, slices).print(scale_name, opts.nprocs);
            }
        }
        // 4x the sweep count: one epoch does far less per-access work than a
        // read/write sweep, so extra iterations amortise the run setup
        // (thread spawn, region init) out of the publish-rate measurement.
        print_epoch(kind, scale_name, opts.nprocs, iters * 4);
    }
}
