//! A log-bucket latency histogram: fixed memory, no allocation per record,
//! bounded relative error.
//!
//! Values (nanoseconds, by convention) land in buckets laid out as octaves —
//! one power-of-two range each — subdivided into `2^SUB_BITS` linear
//! sub-buckets, the same shape HdrHistogram uses.  A bucket at magnitude
//! `2^e` is `2^(e-SUB_BITS)` wide, so the quantile error is bounded by
//! [`LatencyHistogram::RELATIVE_ERROR`] (1/32 ≈ 3.1%) at every scale from
//! 1 ns to `u64::MAX`, and values below `2^SUB_BITS` are recorded exactly.
//!
//! Recording is two shifts and an increment; merging is element-wise adds.
//! The bench bins keep one histogram per worker thread and merge at the end,
//! so the measured hot loop never contends on a shared structure.

/// Linear sub-buckets per octave, as a bit count: 32 sub-buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: one exact group below `SUBS` plus one group per
/// octave from `2^SUB_BITS` up to `2^63`.
const BUCKETS: usize = ((64 - SUB_BITS + 1) * SUBS as u32) as usize;

/// Fixed-size log-bucket histogram for latency samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Worst-case relative quantile error: half a sub-bucket never exceeds
    /// this fraction of the value.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records an elapsed [`std::time::Duration`] in nanoseconds (saturating
    /// at `u64::MAX`, ~584 years).
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact — the sum is kept aside), or 0.0
    /// when empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples: the lower
    /// bound of the bucket holding the sample of rank `ceil(q * count)`,
    /// clamped into `[min, max]`.  Exact whenever every sample sits on a
    /// bucket boundary (in particular for values below `2^SUB_BITS`);
    /// within [`Self::RELATIVE_ERROR`] otherwise.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The standard percentile fields the bench rows embed — `"p50_ns":..`,
    /// `"p99_ns":..`, `"p999_ns":..` — each key prefixed with `prefix`, as a
    /// brace-less JSON fragment.
    pub fn json_fields(&self, prefix: &str) -> String {
        format!(
            "\"{prefix}p50_ns\":{},\"{prefix}p99_ns\":{},\"{prefix}p999_ns\":{}",
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Bucket index for a value: exact below `SUBS`, then octave-grouped.
    fn index_of(v: u64) -> usize {
        if v < SUBS {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros();
            let group = (exp - SUB_BITS + 1) as u64;
            let sub = (v >> (exp - SUB_BITS)) - SUBS;
            (group * SUBS + sub) as usize
        }
    }

    /// Smallest value that lands in bucket `i` (the inverse of
    /// [`Self::index_of`] on boundaries).
    fn lower_bound(i: usize) -> u64 {
        let (group, sub) = (i as u64 / SUBS, i as u64 % SUBS);
        if group == 0 {
            sub
        } else {
            (SUBS + sub) << (group - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_roundtrip_on_boundaries() {
        for i in 0..BUCKETS {
            let low = LatencyHistogram::lower_bound(i);
            assert_eq!(
                LatencyHistogram::index_of(low),
                i,
                "bucket {i} lower bound {low} maps back wrong"
            );
        }
    }

    #[test]
    fn buckets_bound_relative_error() {
        let mut v = 1u64;
        // A multiplicative sweep over the whole range plus the extremes.
        let mut samples = vec![0u64, 1, 2, 3, SUBS - 1, SUBS, u64::MAX];
        while v < u64::MAX / 3 {
            samples.push(v);
            samples.push(v + v / 3);
            v = v.saturating_mul(3);
        }
        for &s in &samples {
            let low = LatencyHistogram::lower_bound(LatencyHistogram::index_of(s));
            assert!(low <= s, "lower bound {low} above sample {s}");
            let err = (s - low) as f64;
            assert!(
                err <= LatencyHistogram::RELATIVE_ERROR * s as f64 + 1e-9,
                "sample {s}: error {err} exceeds the bound"
            );
        }
    }

    #[test]
    fn small_values_and_boundaries_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUBS {
            h.record(v);
        }
        // Every value below 2^SUB_BITS has its own bucket: quantiles are
        // exact, not approximate.
        for v in 0..SUBS {
            let q = (v + 1) as f64 / SUBS as f64;
            assert_eq!(h.quantile(q), v, "q={q} must hit {v} exactly");
        }
        // Power-of-two boundaries stay exact at any magnitude.
        let mut h = LatencyHistogram::new();
        let bounds = [32u64, 64, 1 << 10, 1 << 20, 1 << 40, 1 << 62];
        for &b in &bounds {
            h.record(b);
        }
        for (i, &b) in bounds.iter().enumerate() {
            let q = (i + 1) as f64 / bounds.len() as f64;
            assert_eq!(h.quantile(q), b, "boundary {b} blurred");
        }
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // Cheap LCG over a wide range, including heavy low-end mass.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> (x % 50));
        }
        let mut prev = 0u64;
        for step in 0..=1000 {
            let q = step as f64 / 1000.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} dropped below {prev}");
            prev = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in 0..5_000u64 {
            let s = v * v % 777_777;
            if v % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
            c.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.mean(), c.mean());
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            assert_eq!(a.quantile(q), c.quantile(q), "merge diverged at q={q}");
        }
        assert_eq!(a.json_fields(""), c.json_fields(""));
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);

        let mut h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_nanos(97));
        assert_eq!(h.count(), 1);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 97, "a lone sample answers every quantile");
        }
        assert_eq!(
            h.json_fields("kv_"),
            "\"kv_p50_ns\":97,\"kv_p99_ns\":97,\"kv_p999_ns\":97"
        );
    }
}
