//! Microbenchmarks over the table experiments (scaled down so each sample
//! completes quickly), driven by a minimal self-contained harness (`harness =
//! false`; the offline build environment has no criterion).  One benchmark
//! group per paper table, plus a group for the protocol building blocks.
//!
//! Run with `cargo bench -p dsm-bench`.  Each benchmark reports the minimum
//! and mean wall-clock time over its samples; the minimum is the stable
//! number to compare across runs.

use std::time::{Duration, Instant};

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;
use dsm_mem::{BlockGranularity, Diff, FlatUpdate, UpdateMerge, VectorClock};
use dsm_sim::NodeId;

const SAMPLES: usize = 10;

/// Times `f` over [`SAMPLES`] runs and prints `group/name: min .. mean`.
fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    // One warm-up run so lazily-allocated tables do not skew the first sample.
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / SAMPLES as u32;
    println!("{group}/{name}: min {min:>12.3?}  mean {mean:>12.3?}  ({SAMPLES} samples)");
}

/// Table 3: best-EC vs best-LRC candidates per application (tiny scale).
fn table3() {
    for app in [App::Sor, App::IntegerSort, App::Quicksort, App::Fft3d] {
        for kind in [
            ImplKind::ec_time(),
            ImplKind::lrc_diff(),
            ImplKind::hlrc_diff(),
        ] {
            bench(
                "table3_ec_vs_lrc",
                &format!("{}/{}", app.name(), kind.name()),
                || run_app(app, kind, 4, Scale::Tiny),
            );
        }
    }
}

/// Table 4: the three EC implementations (tiny scale).
fn table4() {
    for kind in ImplKind::ec_all() {
        bench("table4_ec_impls", &format!("IS/{}", kind.name()), || {
            run_app(App::IntegerSort, kind, 4, Scale::Tiny)
        });
    }
}

/// Table 5: the three homeless LRC implementations (tiny scale).
fn table5() {
    for kind in ImplKind::lrc_all() {
        bench("table5_lrc_impls", &format!("SOR/{}", kind.name()), || {
            run_app(App::Sor, kind, 4, Scale::Tiny)
        });
    }
}

/// Table 6: the three home-based LRC implementations (tiny scale).
fn table6() {
    for kind in ImplKind::hlrc_all() {
        bench("table6_hlrc_impls", &format!("SOR/{}", kind.name()), || {
            run_app(App::Sor, kind, 4, Scale::Tiny)
        });
    }
}

/// Protocol building blocks: diff creation/application, timestamp merging,
/// vector-clock operations.
fn mechanisms() {
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    for i in (0..4096).step_by(16) {
        cur[i] = 1;
    }
    bench("mechanisms", "diff_create_page", || {
        Diff::from_compare(&twin, &cur, 0, BlockGranularity::Word)
    });
    let diff = Diff::from_compare(&twin, &cur, 0, BlockGranularity::Word);
    let mut target = vec![0u8; 4096];
    bench("mechanisms", "diff_apply_page", || diff.apply(&mut target));
    bench("mechanisms", "timestamp_merge_reply", || {
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        m.add(1, &diff);
        m.reply_cost(6)
    });
    // The flattened-diff snapshot behind the LRC miss fast path: folding a
    // diff chain flat, and the stamp-array rebuild the engine performs.
    let mut merged = UpdateMerge::new(BlockGranularity::Word);
    merged.add(1, &diff);
    let stamps: Vec<u64> = (0..1024).map(|w| if w % 4 == 0 { 7 } else { 0 }).collect();
    let mut snap = FlatUpdate::new();
    bench("mechanisms", "snapshot_flatten_page", || {
        merged.flatten_into(&mut snap);
        snap.rebuild_from_stamps(&stamps);
        snap.runs().len()
    });
    let mut a = VectorClock::new(8);
    let mut v = VectorClock::new(8);
    for i in 0..8 {
        v.set_entry(NodeId::new(i), i + 3);
    }
    bench("mechanisms", "vector_clock_merge", || {
        a.merge_max(&v);
        a.dominates(&v)
    });
}

fn main() {
    table3();
    table4();
    table5();
    table6();
    mechanisms();
}
