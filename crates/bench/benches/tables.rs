//! Criterion microbenchmarks over the table experiments (scaled down so each
//! sample completes quickly).  One benchmark group per paper table, plus a
//! group for the protocol building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;
use dsm_mem::{BlockGranularity, Diff, UpdateMerge, VectorClock};
use dsm_sim::NodeId;

/// Table 3: best-EC vs best-LRC candidates per application (tiny scale).
fn table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_ec_vs_lrc");
    g.sample_size(10);
    for app in [App::Sor, App::IntegerSort, App::Quicksort, App::Fft3d] {
        for kind in [ImplKind::ec_time(), ImplKind::lrc_diff()] {
            g.bench_with_input(
                BenchmarkId::new(app.name(), kind.name()),
                &(app, kind),
                |b, &(app, kind)| b.iter(|| run_app(app, kind, 4, Scale::Tiny)),
            );
        }
    }
    g.finish();
}

/// Table 4: the three EC implementations (tiny scale).
fn table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_ec_impls");
    g.sample_size(10);
    for kind in ImplKind::ec_all() {
        g.bench_with_input(BenchmarkId::new("IS", kind.name()), &kind, |b, &kind| {
            b.iter(|| run_app(App::IntegerSort, kind, 4, Scale::Tiny))
        });
    }
    g.finish();
}

/// Table 5: the three LRC implementations (tiny scale).
fn table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_lrc_impls");
    g.sample_size(10);
    for kind in ImplKind::lrc_all() {
        g.bench_with_input(BenchmarkId::new("SOR", kind.name()), &kind, |b, &kind| {
            b.iter(|| run_app(App::Sor, kind, 4, Scale::Tiny))
        });
    }
    g.finish();
}

/// Protocol building blocks: diff creation/application, timestamp merging,
/// vector-clock operations.
fn mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanisms");
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    for i in (0..4096).step_by(16) {
        cur[i] = 1;
    }
    g.bench_function("diff_create_page", |b| {
        b.iter(|| Diff::from_compare(&twin, &cur, 0, BlockGranularity::Word))
    });
    let diff = Diff::from_compare(&twin, &cur, 0, BlockGranularity::Word);
    g.bench_function("diff_apply_page", |b| {
        let mut target = vec![0u8; 4096];
        b.iter(|| diff.apply(&mut target))
    });
    g.bench_function("timestamp_merge_reply", |b| {
        b.iter(|| {
            let mut m = UpdateMerge::new(BlockGranularity::Word);
            m.add(1, &diff);
            m.reply_cost(6)
        })
    });
    g.bench_function("vector_clock_merge", |b| {
        let mut a = VectorClock::new(8);
        let mut v = VectorClock::new(8);
        for i in 0..8 {
            v.set_entry(NodeId::new(i), i + 3);
        }
        b.iter(|| {
            a.merge_max(&v);
            a.dominates(&v)
        })
    });
    g.finish();
}

criterion_group!(benches, table3, table4, table5, mechanisms);
criterion_main!(benches);
