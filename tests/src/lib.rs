//! Cross-crate integration tests for the EC/LRC DSM reproduction.
//!
//! The tests live in the `tests/` subdirectory of this package; this library
//! target only exists so the package has a compilation unit.
