//! Typed-API equivalence: the `SharedArray`/`LockGuard`/`ArrayView` layer is
//! pure ergonomics — it must not change a single simulated byte or cost.
//!
//! The golden files under `tests/golden/typed_api_*` were blessed from the
//! raw-API programs *before* the typed layer existed; the ported programs
//! must keep reproducing them byte for byte (contents fnv, `TrafficReport`,
//! per-node statistics), across all nine implementations at 1 and 4
//! processors.

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;
use dsm_tests::{canon_app, canon_run, check_golden, golden_trace, golden_trace_typed};

/// The seeded trace reproduces the pre-redesign goldens for every
/// implementation at 1 and 4 processors — through the raw API *and* through
/// the typed API, whose canonical reports must also agree with each other
/// in-process (contents fnv, `TrafficReport`, per-node statistics).
#[test]
fn trace_matches_pre_redesign_goldens_raw_and_typed() {
    for nprocs in [1usize, 4] {
        let mut found_raw = String::new();
        let mut found_typed = String::new();
        for kind in ImplKind::all() {
            let (result, regions) = golden_trace(kind, nprocs);
            found_raw.push_str(&canon_run(kind, nprocs, &result, &regions));
            let (result, regions) = golden_trace_typed(kind, nprocs);
            found_typed.push_str(&canon_run(kind, nprocs, &result, &regions));
        }
        assert_eq!(
            found_raw, found_typed,
            "typed trace diverged from the raw-API trace at {nprocs} procs"
        );
        check_golden(&format!("typed_api_trace_p{nprocs}.txt"), &found_raw);
    }
}

/// SOR reproduces the pre-redesign goldens for every implementation at 1 and
/// 4 processors.
#[test]
fn sor_matches_pre_redesign_goldens() {
    for nprocs in [1usize, 4] {
        let mut found = String::new();
        for kind in ImplKind::all() {
            let report = run_app(App::Sor, kind, nprocs, Scale::Tiny);
            assert!(report.verified, "{kind} SOR diverged from sequential");
            found.push_str(&canon_app(&report));
        }
        check_golden(&format!("typed_api_sor_p{nprocs}.txt"), &found);
    }
}
