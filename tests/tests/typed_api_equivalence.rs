//! Typed-API equivalence: the `SharedArray`/`LockGuard`/`ArrayView` layer is
//! pure ergonomics — it must not change a single simulated byte or cost.
//!
//! The golden files under `tests/golden/typed_api_*` were blessed from the
//! raw-API programs *before* the typed layer existed; the ported programs
//! must keep reproducing them byte for byte (contents fnv, `TrafficReport`,
//! per-node statistics), across the nine static implementations at 1 and 4
//! processors.  The three adaptive implementations, added later, have their
//! own `typed_api_*_alrc_*` goldens so the static files stay byte-identical
//! to their original blessing.

use dsm_apps::{run_app, App, Scale};
use dsm_core::{ImplKind, Model};
use dsm_tests::{canon_app, canon_run, check_golden, golden_trace, golden_trace_typed};

/// The nine static implementations, in `ImplKind::all()` order (the order
/// the pre-adaptive goldens were blessed in).
fn static_kinds() -> impl Iterator<Item = ImplKind> {
    ImplKind::all()
        .into_iter()
        .filter(|k| k.model() != Model::Adaptive)
}

/// The seeded trace reproduces the pre-redesign goldens for every
/// implementation at 1 and 4 processors — through the raw API *and* through
/// the typed API, whose canonical reports must also agree with each other
/// in-process (contents fnv, `TrafficReport`, per-node statistics).
#[test]
fn trace_matches_pre_redesign_goldens_raw_and_typed() {
    for nprocs in [1usize, 4] {
        let mut found_raw = String::new();
        let mut found_typed = String::new();
        for kind in static_kinds() {
            let (result, regions) = golden_trace(kind, nprocs);
            found_raw.push_str(&canon_run(kind, nprocs, &result, &regions));
            let (result, regions) = golden_trace_typed(kind, nprocs);
            found_typed.push_str(&canon_run(kind, nprocs, &result, &regions));
        }
        assert_eq!(
            found_raw, found_typed,
            "typed trace diverged from the raw-API trace at {nprocs} procs"
        );
        check_golden(&format!("typed_api_trace_p{nprocs}.txt"), &found_raw);
    }
}

/// SOR reproduces the pre-redesign goldens for every implementation at 1 and
/// 4 processors.
#[test]
fn sor_matches_pre_redesign_goldens() {
    for nprocs in [1usize, 4] {
        let mut found = String::new();
        for kind in static_kinds() {
            let report = run_app(App::Sor, kind, nprocs, Scale::Tiny);
            assert!(report.verified, "{kind} SOR diverged from sequential");
            found.push_str(&canon_app(&report));
        }
        check_golden(&format!("typed_api_sor_p{nprocs}.txt"), &found);
    }
}

/// The adaptive family reproduces its own goldens — same trace, same SOR,
/// same canonical format — so its cost accounting is pinned the way the
/// static families' is.
#[test]
fn adaptive_family_matches_its_own_goldens() {
    for nprocs in [1usize, 4] {
        let mut trace = String::new();
        let mut sor = String::new();
        for kind in ImplKind::adaptive_all() {
            let (result, regions) = golden_trace(kind, nprocs);
            trace.push_str(&canon_run(kind, nprocs, &result, &regions));
            let report = run_app(App::Sor, kind, nprocs, Scale::Tiny);
            assert!(report.verified, "{kind} SOR diverged from sequential");
            sor.push_str(&canon_app(&report));
        }
        check_golden(&format!("typed_api_trace_alrc_p{nprocs}.txt"), &trace);
        check_golden(&format!("typed_api_sor_alrc_p{nprocs}.txt"), &sor);
    }
}
