//! The transport backends must be invisible to the application: a run over
//! real threads (channel backend) or real loopback sockets (socket backend)
//! must still verify against the sequential program, and its replicas must
//! reconstruct the final shared memory contents independently from the
//! publish stream.
//!
//! Replica-vs-master verification happens inside the transport's `finish`
//! (it panics on divergence), so a completed run with `replicas_verified > 0`
//! *is* the proof that every frame arrived, reordered into sequence order,
//! and applied to exactly the engines' master bytes — per run, for every app,
//! deterministic or not.
//!
//! Cross-run comparison (channel/socket contents vs. a separate simulated
//! run) is additionally asserted for the apps whose contents are bitwise
//! deterministic.  Lock-grant order between real worker threads is a genuine
//! race, so apps that sum floats under contended locks (Water) or leave
//! scheduling-dependent task-queue words in shared memory (Quicksort)
//! legitimately differ bitwise from one run to the next; SOR, SOR+,
//! Barnes-Hut, IS and 3D-FFT write every shared word from a deterministic
//! owner and reproduce identical bytes every run.

use dsm_apps::{run_app, run_app_on, App, Scale};
use dsm_core::{ImplKind, TransportKind};

/// True if `app` produces bitwise-identical shared contents on every run
/// (established empirically; see the module docs).
fn contents_deterministic(app: App) -> bool {
    !matches!(app, App::Water | App::Quicksort)
}

/// Runs `app` under `kind` on the simulated, channel and socket backends.
fn assert_backends_agree(app: App, kind: ImplKind, nprocs: usize) {
    let base = run_app(app, kind, nprocs, Scale::Tiny);
    assert!(base.verified, "{app}/{kind}: simulated run not verified");
    assert_eq!(base.wire.backend, "sim");
    assert_eq!(base.wire.replicas_verified, 0);

    for transport in [TransportKind::Channel, TransportKind::SocketLocal(2)] {
        let label = transport.label();
        let r = run_app_on(app, kind, nprocs, Scale::Tiny, transport);
        assert!(r.verified, "{app}/{kind} over {label}: run not verified");
        assert_eq!(r.wire.backend, label);
        assert!(
            r.wire.replicas_verified > 0,
            "{app}/{kind} over {label}: no replica verified the contents"
        );
        assert!(
            r.wire.frames_sent > 0,
            "{app}/{kind} over {label}: publish stream was empty"
        );
        assert_eq!(
            r.wire.frames_applied,
            r.wire.frames_sent * r.wire.replicas_verified as u64,
            "{app}/{kind} over {label}: replicas dropped frames"
        );
        assert!(r.wire.wire_bytes > 0, "{app}/{kind} over {label}: no bytes");
        if contents_deterministic(app) {
            assert_eq!(
                r.wire.master_fnv, base.wire.master_fnv,
                "{app}/{kind} over {label}: final contents differ from simulated"
            );
        }
    }
}

#[test]
fn every_app_agrees_across_backends_on_four_nodes() {
    for app in App::ALL {
        for kind in [ImplKind::ec_time(), ImplKind::lrc_diff()] {
            assert_backends_agree(app, kind, 4);
        }
    }
}

#[test]
fn every_app_agrees_across_backends_on_two_nodes() {
    for app in App::ALL {
        assert_backends_agree(app, ImplKind::hlrc_diff(), 2);
    }
}

#[test]
fn the_full_nine_member_matrix_replicates_over_the_channel_backend() {
    for kind in ImplKind::all() {
        let r = run_app_on(
            App::IntegerSort,
            kind,
            4,
            Scale::Tiny,
            TransportKind::Channel,
        );
        assert!(r.verified, "IS/{kind} over channel: run not verified");
        assert_eq!(
            r.wire.replicas_verified, 4,
            "IS/{kind} over channel: every node carries a replica"
        );
        assert_eq!(
            r.wire.frames_applied,
            r.wire.frames_sent * 4,
            "IS/{kind} over channel: replicas dropped frames"
        );
    }
}

#[test]
fn socket_peer_count_scales_independently_of_node_count() {
    for npeers in [1usize, 3] {
        let r = run_app_on(
            App::Sor,
            ImplKind::lrc_diff(),
            4,
            Scale::Tiny,
            TransportKind::SocketLocal(npeers),
        );
        assert!(r.verified);
        assert_eq!(r.wire.replicas_verified, npeers);
        assert_eq!(r.wire.frames_applied, r.wire.frames_sent * npeers as u64);
    }
}
