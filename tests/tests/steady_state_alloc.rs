//! Steady-state allocation test for the epoch loop.
//!
//! The write/publish data plane is pooled and scratch-buffered: twins come
//! from the node's `BufferPool`, the dirty-page list ping-pongs with a spare,
//! the publish history recycles its records and the interval log grows in
//! coarse reserved chunks.  After a warm-up long enough to fill every ring
//! and pool, a whole window of write → release → acquire epochs must
//! therefore allocate *nothing*.  A counting global allocator pins that: the
//! counter is armed inside the worker after warm-up and must not move.
//!
//! The run is single-processor so the armed window counts only the epoch
//! loop itself (the main thread is parked in `join`, and no other worker
//! exists); multi-processor byte-equivalence is covered by the golden suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dsm_core::{BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};

/// Counts every allocator entry point while armed; delegates to the system
/// allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Warm-up epochs: enough to fill the publish-history and diff rings
/// (`diff_ring` = 64), the twin pool, and the first 1024-entry reservation
/// of the interval log.
const WARMUP: usize = 1200;
/// Armed window: stays well inside the interval log's second reservation
/// (next growth at epoch 2048+).
const WINDOW: usize = 256;

#[test]
fn steady_state_epochs_allocate_nothing() {
    let kind = ImplKind::from_name("LRC-diff").expect("known impl");
    let mut dsm = Dsm::new(DsmConfig::with_procs(kind, 1)).expect("valid config");
    // Four pages of shared u32s, all rewritten every epoch.
    let elems = 4 * 1024;
    let region = dsm.alloc_array::<u32>("hot", elems, BlockGranularity::Word);

    dsm.run(|ctx| {
        let mut values = vec![7u32; elems];
        for epoch in 0..WARMUP + WINDOW {
            if epoch == WARMUP {
                ARMED.store(true, Ordering::SeqCst);
            }
            // Fresh values every epoch (in place, no allocation), so the
            // publish really collects and stamps every page each interval.
            for (i, v) in values.iter_mut().enumerate() {
                *v = (epoch + i) as u32;
            }
            let mut g = ctx.lock(LockId::new(0), LockMode::Exclusive);
            g.write_from(region, 0, &values);
            drop(g);
        }
        ARMED.store(false, Ordering::SeqCst);
    });

    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "a steady-state write/release/acquire epoch must not allocate"
    );
}
