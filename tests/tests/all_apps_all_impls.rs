//! Every application of the suite, under every one of the twelve
//! implementations (EC, homeless LRC, home-based LRC and adaptive LRC
//! crossed with the trapping/collection mechanisms), must produce the same
//! answer as its sequential version.

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;

#[test]
fn every_app_matches_sequential_under_every_implementation() {
    assert_eq!(
        ImplKind::all().len(),
        12,
        "the full twelve-member matrix runs"
    );
    for app in App::ALL {
        for kind in ImplKind::all() {
            let report = run_app(app, kind, 4, Scale::Tiny);
            assert!(
                report.verified,
                "{app} under {kind} diverged from the sequential version"
            );
            assert!(
                report.time.as_nanos() > 0,
                "{app} under {kind} took no time"
            );
        }
    }
}

#[test]
fn single_processor_runs_work_for_every_model() {
    for app in [App::Sor, App::IntegerSort, App::Quicksort] {
        for kind in [
            ImplKind::ec_time(),
            ImplKind::lrc_diff(),
            ImplKind::hlrc_diff(),
        ] {
            let report = run_app(app, kind, 1, Scale::Tiny);
            assert!(report.verified, "{app} under {kind} on 1 processor");
        }
    }
}

#[test]
fn more_processors_mean_more_traffic_not_less_correctness() {
    for nprocs in [2usize, 4, 6] {
        let report = run_app(App::IntegerSort, ImplKind::lrc_diff(), nprocs, Scale::Tiny);
        assert!(report.verified);
        if nprocs > 1 {
            assert!(report.traffic.messages > 0);
        }
    }
}

#[test]
fn speedup_is_reported_relative_to_the_sequential_time() {
    let report = run_app(App::Water, ImplKind::lrc_diff(), 4, Scale::Tiny);
    assert!(report.verified);
    assert!(report.speedup() > 0.0);
    assert!(report.seq_time.as_nanos() > 0);
}
