//! Span-API equivalence: `read_slice`/`write_slice` must be observationally
//! identical to element-wise `read`/`write` — same final region contents,
//! same traffic report, same per-node statistics counters — under every
//! implementation (EC/LRC × twinning/instrumentation × collection).
//!
//! Deterministic xorshift-driven traces replace `proptest` (the build
//! environment is offline); every case is reproducible from its printed
//! seed.  The traces are race-free (each processor writes only its own
//! page-aligned slab, reads happen between barriers) so per-node counters
//! are scheduling-independent; simulated *times* are not compared because
//! the lazy diff-creation charge goes to whichever racing reader reaches
//! the page first, which the paper's protocol itself leaves unordered.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
};
use dsm_mem::testutil::TestRng as Rng;

/// u32 elements in one page.
const PAGE_ELEMS: usize = dsm_mem::PAGE_SIZE / 4;
/// Region size: four full pages plus a partial fifth page.
const ELEMS: usize = 4 * PAGE_ELEMS + 100;

/// One span access: `len` elements starting at `start` (plus a value seed
/// for writes).
#[derive(Debug, Clone)]
struct Op {
    start: usize,
    len: usize,
    seed: u64,
}

/// One bulk-synchronous phase: per-processor writes (own slab only), then a
/// barrier, then per-processor reads (anywhere), then a barrier.
#[derive(Debug, Clone)]
struct Phase {
    writes: Vec<Vec<Op>>,
    reads: Vec<Vec<Op>>,
}

/// The page-aligned slab of elements owned by processor `me` (the last
/// processor also takes the partial tail page), keeping every page
/// single-writer so the trace is race-free under both models.
fn slab(me: usize, nprocs: usize) -> (usize, usize) {
    let per = (ELEMS / nprocs) / PAGE_ELEMS * PAGE_ELEMS;
    let lo = me * per;
    let hi = if me == nprocs - 1 { ELEMS } else { lo + per };
    (lo, hi)
}

fn gen_phases(rng: &mut Rng, nprocs: usize) -> Vec<Phase> {
    (0..3)
        .map(|_| Phase {
            writes: (0..nprocs)
                .map(|p| {
                    let (lo, hi) = slab(p, nprocs);
                    (0..rng.in_range(1, 4))
                        .map(|_| {
                            let len = rng.in_range(1, (hi - lo).min(600));
                            Op {
                                start: lo + rng.below(hi - lo - len + 1),
                                len,
                                seed: rng.next_u64(),
                            }
                        })
                        .collect()
                })
                .collect(),
            reads: (0..nprocs)
                .map(|_| {
                    (0..rng.in_range(1, 4))
                        .map(|_| {
                            // Read spans cross slab and page boundaries.
                            let len = rng.in_range(1, 1500);
                            Op {
                                start: rng.below(ELEMS - len + 1),
                                len,
                                seed: 0,
                            }
                        })
                        .collect()
                })
                .collect(),
        })
        .collect()
}

fn value(seed: u64, k: usize) -> u32 {
    (seed as u32)
        .wrapping_add(k as u32)
        .wrapping_mul(0x9E37_79B9)
}

/// Executes the trace with either the span APIs or the element-wise loop.
fn run_trace(kind: ImplKind, nprocs: usize, phases: &[Phase], slices: bool) -> RunResult {
    let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).expect("valid config");
    let data = dsm.alloc_array::<u32>("span-data", ELEMS, BlockGranularity::Word);
    // One full page per checksum slot: a shared page would have several
    // writers, whose publish-vs-trap races make miss counts scheduling
    // dependent (legitimately — for both access styles).
    let sums = dsm.alloc_array::<u32>("span-sums", nprocs * PAGE_ELEMS, BlockGranularity::Word);
    dsm.init_array(data, |i| i as u32);
    if kind.model() == Model::Ec {
        for p in 0..nprocs {
            let (lo, hi) = slab(p, nprocs);
            dsm.bind(LockId::new(p as u32), [data.range(lo, hi - lo)]);
            dsm.bind(
                LockId::new((nprocs + p) as u32),
                [sums.range(p * PAGE_ELEMS, 1)],
            );
        }
    }
    let barrier = BarrierId::new(0);
    dsm.run(|ctx| {
        let me = ctx.node();
        let own = LockId::new(me as u32);
        let mut buf = vec![0u32; ELEMS];
        let mut checksum = 0u64;
        for phase in phases {
            ctx.acquire(own, LockMode::Exclusive);
            for op in &phase.writes[me] {
                for (k, slot) in buf[..op.len].iter_mut().enumerate() {
                    *slot = value(op.seed, k);
                }
                if slices {
                    ctx.write_from(data, op.start, &buf[..op.len]);
                } else {
                    for (k, &v) in buf[..op.len].iter().enumerate() {
                        ctx.set(data, op.start + k, v);
                    }
                }
            }
            ctx.release(own);
            ctx.barrier(barrier);
            for op in &phase.reads[me] {
                if slices {
                    ctx.read_into(data, op.start, &mut buf[..op.len]);
                    for &v in &buf[..op.len] {
                        checksum = checksum.wrapping_add(v as u64);
                    }
                } else {
                    for k in 0..op.len {
                        checksum = checksum.wrapping_add(ctx.get(data, op.start + k) as u64);
                    }
                }
            }
            ctx.barrier(barrier);
        }
        // Publishing the checksum makes "the reads saw the same bytes" part
        // of the final-contents comparison.
        let sum_lock = LockId::new((ctx.nprocs() + me) as u32);
        ctx.acquire(sum_lock, LockMode::Exclusive);
        ctx.set(sums, me * PAGE_ELEMS, checksum as u32);
        ctx.release(sum_lock);
        ctx.barrier(barrier);
    })
}

#[test]
fn span_apis_match_element_wise_access_exactly() {
    for seed in 0..4u64 {
        for nprocs in [1usize, 4] {
            let mut rng = Rng::new(seed * 131 + 7);
            let phases = gen_phases(&mut rng, nprocs);
            for kind in ImplKind::all() {
                let by_elem = run_trace(kind, nprocs, &phases, false);
                let by_span = run_trace(kind, nprocs, &phases, true);
                let ctxt = format!("seed {seed}, {kind}, {nprocs} procs");
                assert_eq!(
                    by_elem.stats, by_span.stats,
                    "{ctxt}: per-node statistics diverged"
                );
                assert_eq!(
                    by_elem.traffic, by_span.traffic,
                    "{ctxt}: traffic report diverged"
                );
            }
        }
    }
}

#[test]
fn span_apis_produce_identical_region_contents() {
    for seed in 0..4u64 {
        for nprocs in [1usize, 4] {
            let mut rng = Rng::new(seed * 977 + 13);
            let phases = gen_phases(&mut rng, nprocs);
            for kind in ImplKind::all() {
                let run = |slices| {
                    let result = run_trace(kind, nprocs, &phases, slices);
                    // Region handles are per-`Dsm`; rebuild them for reading.
                    let mut probe = Dsm::new(DsmConfig::with_procs(kind, nprocs)).unwrap();
                    let data = probe.alloc_array::<u32>("span-data", ELEMS, BlockGranularity::Word);
                    let sums = probe.alloc_array::<u32>(
                        "span-sums",
                        nprocs * PAGE_ELEMS,
                        BlockGranularity::Word,
                    );
                    (result.final_array(data), result.final_array(sums))
                };
                let (data_e, sums_e) = run(false);
                let (data_s, sums_s) = run(true);
                let ctxt = format!("seed {seed}, {kind}, {nprocs} procs");
                assert_eq!(data_e, data_s, "{ctxt}: final data contents diverged");
                assert_eq!(sums_e, sums_s, "{ctxt}: read checksums diverged");
            }
        }
    }
}
