//! Tests specific to the sharded runtime: cross-implementation equivalence on
//! a contended multi-lock workload, and a many-locks × many-processors stress
//! test that exercises exactly the shape the old single-mutex/single-condvar
//! design serialized (and whose thundering-herd wakeups it amplified).

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};

/// All six implementations must produce identical final region contents on a
/// workload where every processor repeatedly acquires *other* processors'
/// locks (migratory data, heavy contention on every lock).
///
/// The updates commute (wrapping adds of per-(processor, round) constants),
/// so the final contents are independent of the order in which the lock
/// transfers happen to interleave — any divergence is a protocol bug, not
/// scheduling noise.
#[test]
fn six_impls_agree_on_contended_multilock_workload() {
    const NPROCS: usize = 4;
    const NLOCKS: usize = 8;
    const SLOTS_PER_LOCK: usize = 16;
    const ROUNDS: usize = 6;

    let mut reference: Option<Vec<u32>> = None;
    for kind in ImplKind::all() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, NPROCS)).unwrap();
        let region =
            dsm.alloc_array::<u32>("slots", NLOCKS * SLOTS_PER_LOCK, BlockGranularity::Word);
        // Under EC, each lock protects (and is bound to) its own slice.
        for l in 0..NLOCKS {
            dsm.bind(
                LockId::new(l as u32),
                [region.range(l * SLOTS_PER_LOCK, SLOTS_PER_LOCK)],
            );
        }

        let result = dsm.run(|ctx| {
            let me = ctx.node();
            for round in 0..ROUNDS {
                // Every processor walks all locks, starting at a different
                // offset each round so ownership migrates constantly.
                for step in 0..NLOCKS {
                    let l = (me + round + step) % NLOCKS;
                    ctx.acquire(LockId::new(l as u32), LockMode::Exclusive);
                    for s in 0..SLOTS_PER_LOCK {
                        let idx = l * SLOTS_PER_LOCK + s;
                        let bump = (me * 31 + round * 7 + s) as u32 + 1;
                        ctx.modify(region, idx, |v: u32| v.wrapping_add(bump));
                    }
                    ctx.release(LockId::new(l as u32));
                }
                ctx.barrier(BarrierId::new(0));
            }
        });

        let finals = result.final_array(region);
        // Independent cross-check: the commutative sum every slot must reach.
        let mut expected = vec![0u32; NLOCKS * SLOTS_PER_LOCK];
        for me in 0..NPROCS {
            for round in 0..ROUNDS {
                for l in 0..NLOCKS {
                    for s in 0..SLOTS_PER_LOCK {
                        let bump = (me * 31 + round * 7 + s) as u32 + 1;
                        expected[l * SLOTS_PER_LOCK + s] =
                            expected[l * SLOTS_PER_LOCK + s].wrapping_add(bump);
                    }
                }
            }
        }
        assert_eq!(finals, expected, "wrong slot sums under {kind}");
        match &reference {
            None => reference = Some(finals),
            Some(r) => assert_eq!(r, &finals, "final contents diverge under {kind}"),
        }
        assert!(
            result.traffic.lock_transfers > 0,
            "a migratory workload must transfer locks under {kind}"
        );
    }
}

/// Many locks × many processors: with per-slot condition variables each
/// release wakes only that lock's contenders, and disjoint lock/region pairs
/// proceed in parallel.  Under the old design every one of these operations
/// took the single cluster mutex and every release woke every waiter in the
/// cluster; the test pins down that the sharded runtime still executes the
/// workload correctly at a thread count well above the paper's 8.
#[test]
fn many_locks_many_processors_stress() {
    const NPROCS: usize = 16;
    const NLOCKS: usize = 64;
    const ACQUIRES_PER_PROC: usize = 200;

    for kind in [ImplKind::ec_diff(), ImplKind::lrc_diff()] {
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, NPROCS)).unwrap();
        // One counter per lock, page-interleaved to also exercise false
        // sharing under LRC.
        let counters = dsm.alloc_array::<u32>("counters", NLOCKS, BlockGranularity::Word);
        for l in 0..NLOCKS {
            dsm.bind(LockId::new(l as u32), [counters.range(l, 1)]);
        }

        let result = dsm.run(|ctx| {
            let me = ctx.node();
            // A deterministic per-node walk over the lock space; different
            // nodes collide on some locks and run alone on others.
            let mut x = (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            for _ in 0..ACQUIRES_PER_PROC {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let l = (x % NLOCKS as u64) as usize;
                ctx.acquire(LockId::new(l as u32), LockMode::Exclusive);
                ctx.modify(counters, l, |v: u32| v + 1);
                ctx.release(LockId::new(l as u32));
            }
            ctx.barrier(BarrierId::new(0));
        });

        // Every increment must have survived the contention: the counters sum
        // to the exact number of acquires performed.
        let finals = result.final_array(counters);
        let total: u64 = finals.iter().map(|&v| v as u64).sum();
        assert_eq!(
            total,
            (NPROCS * ACQUIRES_PER_PROC) as u64,
            "lost updates under {kind}"
        );
        assert_eq!(
            result.traffic.lock_acquires,
            (NPROCS * ACQUIRES_PER_PROC) as u64,
            "acquire count under {kind}"
        );
        assert!(result.traffic.lock_transfers > 0);
    }
}

/// Read-only EC locks admit concurrent readers per slot; a writer phase
/// followed by a fan-out read phase must see the published value everywhere.
#[test]
fn read_only_locks_share_a_slot() {
    const NPROCS: usize = 8;
    let kind = ImplKind::ec_time();
    let mut dsm = Dsm::new(DsmConfig::with_procs(kind, NPROCS)).unwrap();
    let data = dsm.alloc_array::<u32>("data", 64, BlockGranularity::Word);
    dsm.bind(LockId::new(0), [data.whole()]);

    let result = dsm.run(|ctx| {
        if ctx.node() == 0 {
            ctx.acquire(LockId::new(0), LockMode::Exclusive);
            for i in 0..64 {
                ctx.set(data, i, 1000 + i as u32);
            }
            ctx.release(LockId::new(0));
        }
        ctx.barrier(BarrierId::new(0));
        // Everyone (including the writer) reads under a read-only lock.
        ctx.acquire(LockId::new(0), LockMode::ReadOnly);
        let me = ctx.node();
        assert_eq!(ctx.get(data, me), 1000 + me as u32);
        ctx.release(LockId::new(0));
        ctx.barrier(BarrierId::new(1));
    });
    assert_eq!(result.final_at(data, 63), 1063);
}
