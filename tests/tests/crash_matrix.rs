//! Crash-at-every-boundary sweep: over a short SOR run at 4 processors,
//! kill a node at *each* barrier index in turn — under one implementation
//! from each protocol family — and assert that recovery converges to the
//! uncrashed run's canonical output at every crash point.
//!
//! This is the systematic companion to `recovery_equivalence.rs` (which
//! pins the full 12-implementation matrix at one mid-run crash point):
//! equivalence must hold whether the node dies at the very first barrier
//! (recovering from the initial cut), in the middle (redoing one epoch from
//! the last checkpoint), or at the final barrier (where every peer is
//! already waiting to finish).

use dsm_apps::{run_app_opts, App, RunOpts, Scale};
use dsm_core::{FaultPlan, ImplKind, TransportKind};
use dsm_tests::canon_app;

/// Tiny SOR executes 4 iterations x 2 colour barriers plus the final
/// barrier: 9 barrier episodes, indices 0..=8.
const BARRIERS: u64 = 9;

fn sweep(kind: ImplKind) {
    let base = run_app_opts(App::Sor, kind, 4, Scale::Tiny, RunOpts::default());
    assert!(base.verified, "{kind}: uncrashed run failed");
    let want = canon_app(&base);
    for barrier in 0..BARRIERS {
        // Rotate the victim so the sweep also varies which band crashes.
        let node = (barrier % 4) as u32;
        let crashed = run_app_opts(
            App::Sor,
            kind,
            4,
            Scale::Tiny,
            RunOpts {
                transport: TransportKind::Simulated,
                fault: FaultPlan::KillAt { node, barrier },
            },
        );
        assert!(
            crashed.verified,
            "{kind}: crash of P{node} at barrier {barrier} diverged from sequential output"
        );
        assert_eq!(
            want,
            canon_app(&crashed),
            "{kind}: crash of P{node} at barrier {barrier} did not recover equivalently"
        );
        assert_eq!(
            crashed.recovery.crashes, 1,
            "{kind}: fault at barrier {barrier} never fired"
        );
        // Rollback work is always charged; simulated time is lost whenever
        // the crash epoch did any work (barrier 0 starts from the initial
        // cut, and the final barrier follows the last loop barrier with no
        // work in between — those two may lose nothing).
        assert!(crashed.recovery.restore_ns > 0, "{kind}: free restore");
        assert!(
            crashed.recovery.lost_ns > 0 || barrier == 0 || barrier == BARRIERS - 1,
            "{kind}: mid-run crash at barrier {barrier} lost no simulated time"
        );
    }
}

#[test]
fn ec_time_recovers_at_every_barrier() {
    sweep(ImplKind::ec_time());
}

#[test]
fn lrc_diff_recovers_at_every_barrier() {
    sweep(ImplKind::lrc_diff());
}

#[test]
fn hlrc_diff_recovers_at_every_barrier() {
    sweep(ImplKind::hlrc_diff());
}

#[test]
fn adaptive_diff_recovers_at_every_barrier() {
    sweep(ImplKind::adaptive_diff());
}
