//! Property tests for the KV workload generators: the traces the bench and
//! equivalence suites replay must be byte-identical per seed on every host,
//! and the key samplers must actually have the distribution shape their
//! names claim (pinned through the sampler's own `quantile_rank`, so a
//! regression in either the sampler or the quantile math trips the test).

use dsm_kvservice::workload::{gen_trace, KeySampler, MixSpec, XorShift64};
use dsm_kvservice::KvOp;

/// Draw count for the empirical-shape checks: big enough that a mismatched
/// distribution fails by a wide margin, small enough for CI.
const DRAWS: usize = 200_000;

/// Empirical rank counts from `DRAWS` samples.
fn empirical_counts(sampler: &KeySampler, seed: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed);
    let mut counts = vec![0u64; sampler.keys() as usize];
    for _ in 0..DRAWS {
        let k = sampler.sample(&mut rng);
        counts[(k - 1) as usize] += 1;
    }
    counts
}

/// The smallest rank whose cumulative empirical mass reaches `q`.
fn empirical_quantile_rank(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    let target = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (rank, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return rank as u64;
        }
    }
    counts.len() as u64 - 1
}

#[test]
fn traces_are_byte_identical_per_seed() {
    let sampler = KeySampler::zipf(1000, 0.99);
    for mix in MixSpec::ALL {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = gen_trace(seed, 5000, &sampler, &mix);
            let b = gen_trace(seed, 5000, &sampler, &mix);
            assert_eq!(a, b, "{}/seed {seed}: trace not reproducible", mix.name);
        }
        let a = gen_trace(7, 5000, &sampler, &mix);
        let b = gen_trace(8, 5000, &sampler, &mix);
        assert_ne!(a, b, "{}: distinct seeds produced one trace", mix.name);
    }
}

#[test]
fn trace_prefixes_are_stable_across_lengths() {
    // Extending a trace must not perturb its prefix — the bench relies on
    // this to scale op counts without changing what the short runs did.
    let sampler = KeySampler::uniform(512);
    let mix = MixSpec::ALL[1];
    let short = gen_trace(99, 1000, &sampler, &mix);
    let long = gen_trace(99, 4000, &sampler, &mix);
    assert_eq!(short[..], long[..1000]);
}

#[test]
fn the_exact_head_of_a_known_trace_is_pinned() {
    // A golden prefix: if the PRNG, the sampler walk or the mix's draw
    // order ever changes, every recorded BENCH_kv row silently changes
    // meaning — make that loud instead.
    let sampler = KeySampler::zipf(100, 0.99);
    let trace = gen_trace(12345, 4, &sampler, &MixSpec::ALL[1]);
    let mut rng = XorShift64::new(12345);
    let replay: Vec<KvOp> = (0..4)
        .map(|_| MixSpec::ALL[1].op(&mut rng, &sampler))
        .collect();
    assert_eq!(trace, replay);
    // And the raw generator itself is pinned to a known constant (the
    // xorshift64* step from state 1).
    let mut rng = XorShift64::new(1);
    assert_eq!(rng.next_u64(), 0xbafa_cf62_4f01_c45d);
}

#[test]
fn uniform_sampler_is_flat() {
    let sampler = KeySampler::uniform(64);
    let counts = empirical_counts(&sampler, 3);
    let expect = DRAWS as f64 / 64.0;
    for (rank, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expect).abs() / expect;
        assert!(
            dev < 0.10,
            "uniform rank {rank}: {c} vs {expect} (dev {dev})"
        );
    }
    // Quantile ranks scale linearly.
    for q in [0.25, 0.5, 0.75] {
        let want = sampler.quantile_rank(q);
        let got = empirical_quantile_rank(&counts, q);
        assert!(
            want.abs_diff(got) <= 1,
            "uniform q={q}: sampler says rank {want}, empirical {got}"
        );
    }
}

#[test]
fn zipf_sampler_matches_its_own_quantiles_and_is_skewed() {
    let sampler = KeySampler::zipf(1000, 0.99);
    let counts = empirical_counts(&sampler, 11);
    // Shape agreement: empirical quantile ranks track the analytic table.
    for q in [0.25, 0.5, 0.75, 0.9, 0.99] {
        let want = sampler.quantile_rank(q) as i64;
        let got = empirical_quantile_rank(&counts, q) as i64;
        let slack = (want / 10).max(2);
        assert!(
            (want - got).abs() <= slack,
            "zipf q={q}: analytic rank {want}, empirical {got}"
        );
    }
    // Genuine skew: the hottest key draws far more than uniform would, and
    // the head dominates the tail.
    let hottest = counts[0] as f64 / DRAWS as f64;
    assert!(
        hottest > 0.05,
        "zipf head mass {hottest} too flat for theta=0.99"
    );
    let head: u64 = counts[..10].iter().sum();
    let tail: u64 = counts[500..].iter().sum();
    assert!(
        head > tail,
        "zipf: 10 hottest keys ({head}) drew less than the cold half ({tail})"
    );
    // Monotone-ish head: rank 0 beats rank 9 decisively.
    assert!(counts[0] > counts[9] * 2);
}

#[test]
fn mix_op_kinds_cover_the_advertised_shares() {
    let sampler = KeySampler::uniform(100);
    for mix in MixSpec::ALL {
        let trace = gen_trace(5, 50_000, &sampler, &mix);
        let mut gets = 0u64;
        let (mut puts, mut cas, mut dels) = (0u64, 0u64, 0u64);
        for op in &trace {
            match op {
                KvOp::Get { .. } => gets += 1,
                KvOp::Put { .. } => puts += 1,
                KvOp::Cas { .. } => cas += 1,
                KvOp::Delete { .. } => dels += 1,
            }
        }
        let n = trace.len() as f64;
        let read_frac = gets as f64 / n;
        let want_reads = mix.read_pct as f64 / 100.0;
        assert!(
            (read_frac - want_reads).abs() < 0.01,
            "{}: reads {read_frac} vs {want_reads}",
            mix.name
        );
        // Every write kind occurs, and puts dominate the write side.
        assert!(
            puts > 0 && cas > 0 && dels > 0,
            "{}: a write kind vanished",
            mix.name
        );
        assert!(
            puts > cas && cas > dels,
            "{}: write split out of order",
            mix.name
        );
    }
}
