//! Property-based tests over the DSM protocols and their building blocks.

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};
use dsm_mem::{Diff, UpdateMerge, VectorClock};
use dsm_sim::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Applying a diff built from (twin, current) to a copy of the twin
    /// always reconstructs `current`, at either granularity.
    #[test]
    fn diff_roundtrip(data in prop::collection::vec(any::<u8>(), 64..512),
                      flips in prop::collection::vec((0usize..512, any::<u8>()), 0..64),
                      dw in any::<bool>()) {
        let twin = data.clone();
        let mut current = data;
        for (pos, val) in flips {
            let p = pos % current.len();
            current[p] = val;
        }
        let gran = if dw { BlockGranularity::DoubleWord } else { BlockGranularity::Word };
        let diff = Diff::from_compare(&twin, &current, 0, gran);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, current);
    }

    /// Folding a chain of diffs through `UpdateMerge` produces the same final
    /// bytes as applying the diffs in order (timestamp collection and diff
    /// collection are content-equivalent).
    #[test]
    fn merge_equals_sequential_application(
        base in prop::collection::vec(any::<u8>(), 64..256),
        steps in prop::collection::vec(prop::collection::vec((0usize..256, any::<u8>()), 1..16), 1..6),
    ) {
        let mut by_diffs = base.clone();
        let mut merge = UpdateMerge::new(BlockGranularity::Word);
        let mut current = base.clone();
        for (stamp, flips) in steps.iter().enumerate() {
            let prev = current.clone();
            for (pos, val) in flips {
                let p = pos % current.len();
                current[p] = *val;
            }
            let diff = Diff::from_compare(&prev, &current, 0, BlockGranularity::Word);
            diff.apply(&mut by_diffs);
            merge.add(stamp as u64 + 1, &diff);
        }
        let mut by_merge = base.clone();
        merge.apply_to(&mut by_merge);
        prop_assert_eq!(by_diffs.clone(), current.clone());
        prop_assert_eq!(by_merge, current);
    }

    /// Vector clocks form a join-semilattice: merge is idempotent,
    /// commutative, and dominates both inputs.
    #[test]
    fn vector_clock_lattice(a in prop::collection::vec(0u32..50, 8),
                            b in prop::collection::vec(0u32..50, 8)) {
        let mut va = VectorClock::new(8);
        let mut vb = VectorClock::new(8);
        for i in 0..8 {
            va.set_entry(NodeId::new(i as u32), a[i]);
            vb.set_entry(NodeId::new(i as u32), b[i]);
        }
        let mut ab = va.clone();
        ab.merge_max(&vb);
        let mut ba = vb.clone();
        ba.merge_max(&va);
        prop_assert_eq!(ab.clone(), ba);
        prop_assert!(ab.dominates(&va));
        prop_assert!(ab.dominates(&vb));
        let mut again = ab.clone();
        again.merge_max(&ab);
        prop_assert_eq!(again, ab);
    }

    /// A randomly generated bulk-synchronous program — each processor writes
    /// a random slice of a shared array each phase, with barriers in between —
    /// produces identical final contents under every implementation.
    #[test]
    fn random_bsp_program_is_model_independent(
        writes in prop::collection::vec((0usize..4, 0usize..256, 1usize..32, any::<u32>()), 1..24),
    ) {
        let nprocs = 4;
        let elems = 256usize;
        let mut reference: Option<Vec<u32>> = None;
        for kind in ImplKind::all() {
            let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).unwrap();
            let region = dsm.alloc_array::<u32>("bsp", elems, BlockGranularity::Word);
            // Under EC, bind one lock per processor-owned quarter.
            for p in 0..nprocs {
                dsm.bind(
                    LockId::new(p as u32),
                    vec![region.range_of::<u32>(p * elems / nprocs, elems / nprocs)],
                );
            }
            let writes = writes.clone();
            let result = dsm.run(|ctx| {
                let me = ctx.node();
                for phase in writes.chunks(4) {
                    for &(proc, start, len, val) in phase {
                        if proc % ctx.nprocs() != me {
                            continue;
                        }
                        // Each processor only writes inside its own quarter so
                        // the program is race-free for both models.
                        let base = me * elems / ctx.nprocs();
                        let quarter = elems / ctx.nprocs();
                        ctx.acquire(LockId::new(me as u32), LockMode::Exclusive);
                        for k in 0..len {
                            let idx = base + (start + k) % quarter;
                            ctx.write::<u32>(region, idx, val.wrapping_add(k as u32));
                        }
                        ctx.release(LockId::new(me as u32));
                    }
                    ctx.barrier(BarrierId::new(0));
                }
            });
            let finals = result.final_vec::<u32>(region);
            match &reference {
                None => reference = Some(finals),
                Some(expected) => prop_assert_eq!(expected, &finals, "mismatch under {}", kind),
            }
        }
    }
}
