//! Property-style tests over the DSM protocols and their building blocks.
//!
//! Deterministic xorshift-driven cases replace `proptest` (the build
//! environment is offline); every case is reproducible from its printed seed.

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};
use dsm_mem::testutil::TestRng as Rng;
use dsm_mem::{Diff, UpdateMerge, VectorClock};
use dsm_sim::NodeId;

/// Applying a diff built from (twin, current) to a copy of the twin always
/// reconstructs `current`, at either granularity.
#[test]
fn diff_roundtrip() {
    for seed in 0..32 {
        let mut rng = Rng::new(seed + 1);
        let len = rng.in_range(64, 512);
        let twin = rng.bytes(len);
        let mut current = twin.clone();
        for _ in 0..rng.below(64) {
            let p = rng.below(len);
            current[p] = rng.byte();
        }
        let gran = if seed % 2 == 0 {
            BlockGranularity::DoubleWord
        } else {
            BlockGranularity::Word
        };
        let diff = Diff::from_compare(&twin, &current, 0, gran);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        assert_eq!(rebuilt, current, "seed {seed}");
    }
}

/// Folding a chain of diffs through `UpdateMerge` produces the same final
/// bytes as applying the diffs in order (timestamp collection and diff
/// collection are content-equivalent).
#[test]
fn merge_equals_sequential_application() {
    for seed in 0..32 {
        let mut rng = Rng::new(seed + 100);
        let len = rng.in_range(64, 256);
        let base = rng.bytes(len);
        let mut by_diffs = base.clone();
        let mut merge = UpdateMerge::new(BlockGranularity::Word);
        let mut current = base.clone();
        let steps = rng.in_range(1, 6);
        for stamp in 0..steps {
            let prev = current.clone();
            for _ in 0..rng.in_range(1, 16) {
                let p = rng.below(len);
                current[p] = rng.byte();
            }
            let diff = Diff::from_compare(&prev, &current, 0, BlockGranularity::Word);
            diff.apply(&mut by_diffs);
            merge.add(stamp as u64 + 1, &diff);
        }
        let mut by_merge = base.clone();
        merge.apply_to(&mut by_merge);
        assert_eq!(by_diffs, current, "seed {seed}");
        assert_eq!(by_merge, current, "seed {seed}");
    }
}

/// Vector clocks form a join-semilattice: merge is idempotent, commutative,
/// and dominates both inputs.
#[test]
fn vector_clock_lattice() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed + 200);
        let mut va = VectorClock::new(8);
        let mut vb = VectorClock::new(8);
        for i in 0..8 {
            va.set_entry(NodeId::new(i as u32), rng.below(50) as u32);
            vb.set_entry(NodeId::new(i as u32), rng.below(50) as u32);
        }
        let mut ab = va.clone();
        ab.merge_max(&vb);
        let mut ba = vb.clone();
        ba.merge_max(&va);
        assert_eq!(ab, ba, "seed {seed}");
        assert!(ab.dominates(&va), "seed {seed}");
        assert!(ab.dominates(&vb), "seed {seed}");
        let mut again = ab.clone();
        again.merge_max(&ab);
        assert_eq!(again, ab, "seed {seed}");
    }
}

/// A randomly generated bulk-synchronous program — each processor writes a
/// slice of a shared array each phase, with barriers in between — produces
/// identical final contents under every implementation of the twelve-member
/// matrix (EC, homeless, home-based and adaptive LRC families alike).
#[test]
fn random_bsp_program_is_model_independent() {
    assert_eq!(
        ImplKind::all().len(),
        12,
        "the full twelve-member matrix runs"
    );
    for seed in 0..8 {
        let mut rng = Rng::new(seed + 300);
        let nprocs = 4;
        let elems = 256usize;
        let nwrites = rng.in_range(1, 24);
        let writes: Vec<(usize, usize, usize, u32)> = (0..nwrites)
            .map(|_| {
                (
                    rng.below(4),
                    rng.below(256),
                    rng.in_range(1, 32),
                    rng.next_u64() as u32,
                )
            })
            .collect();

        let mut reference: Option<Vec<u32>> = None;
        for kind in ImplKind::all() {
            let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).unwrap();
            let region = dsm.alloc_array::<u32>("bsp", elems, BlockGranularity::Word);
            // Under EC, bind one lock per processor-owned quarter.
            for p in 0..nprocs {
                dsm.bind(
                    LockId::new(p as u32),
                    [region.range(p * elems / nprocs, elems / nprocs)],
                );
            }
            let writes = writes.clone();
            let result = dsm.run(|ctx| {
                let me = ctx.node();
                for phase in writes.chunks(4) {
                    for &(proc, start, len, val) in phase {
                        if proc % ctx.nprocs() != me {
                            continue;
                        }
                        // Each processor only writes inside its own quarter so
                        // the program is race-free for both models.
                        let base = me * elems / ctx.nprocs();
                        let quarter = elems / ctx.nprocs();
                        ctx.acquire(LockId::new(me as u32), LockMode::Exclusive);
                        for k in 0..len {
                            let idx = base + (start + k) % quarter;
                            ctx.set(region, idx, val.wrapping_add(k as u32));
                        }
                        ctx.release(LockId::new(me as u32));
                    }
                    ctx.barrier(BarrierId::new(0));
                }
            });
            let finals = result.final_array(region);
            match &reference {
                None => reference = Some(finals),
                Some(expected) => {
                    assert_eq!(expected, &finals, "seed {seed}, mismatch under {kind}")
                }
            }
        }
    }
}
