//! Recovery equivalence: a run that crashes a node mid-flight and recovers
//! it from its last checkpoint must be observably identical to the run that
//! never crashed.
//!
//! "Observably identical" is the canonical application serialization of
//! `dsm_tests::canon_app` — verified output contents, the aggregate
//! `TrafficReport`, and every per-node statistics counter.  Simulated
//! *times* are outside the comparison: checkpoint capture and rollback
//! restore charge real (simulated) memory-copy time to the recovering node,
//! so the crashed run finishes later — but it must not send one extra
//! protocol byte or publish one different word (`DESIGN.md` §8).
//!
//! The suite pins the whole 12-implementation matrix at 1 and 4 processors
//! on SOR, and exercises the channel transport (checkpoint images and the
//! rollback notice travel the wire to every replica, which verifies count
//! and fingerprint at finish).

use dsm_apps::{run_app_opts, App, AppReport, RunOpts, Scale};
use dsm_core::{FaultPlan, ImplKind, TransportKind};
use dsm_tests::canon_app;

/// Runs tiny SOR at `nprocs` under `kind` with the given options.
fn sor(kind: ImplKind, nprocs: usize, opts: RunOpts) -> AppReport {
    run_app_opts(App::Sor, kind, nprocs, Scale::Tiny, opts)
}

/// Asserts that a run crashed at `fault` is canonically identical to the
/// uncrashed run, and that recovery actually happened.
fn assert_equivalent(kind: ImplKind, nprocs: usize, fault: FaultPlan) {
    let base = sor(kind, nprocs, RunOpts::default());
    let crashed = sor(
        kind,
        nprocs,
        RunOpts {
            transport: TransportKind::Simulated,
            fault,
        },
    );
    assert!(base.verified, "{kind}/{nprocs}p: uncrashed run failed");
    assert!(
        crashed.verified,
        "{kind}/{nprocs}p: crashed run diverged from sequential output"
    );
    assert_eq!(
        canon_app(&base),
        canon_app(&crashed),
        "{kind}/{nprocs}p: crashed-and-recovered run is not equivalent"
    );
    // The fault actually fired and was recovered from.
    assert_eq!(crashed.recovery.crashes, 1, "{kind}/{nprocs}p");
    assert!(crashed.recovery.checkpoints > 0, "{kind}/{nprocs}p");
    assert!(crashed.recovery.checkpoint_bytes > 0, "{kind}/{nprocs}p");
    assert!(crashed.recovery.restore_ns > 0, "{kind}/{nprocs}p");
    // The uncrashed run carries no recovery machinery at all.
    assert_eq!(base.recovery.checkpoints, 0, "{kind}/{nprocs}p");
    assert_eq!(base.recovery.crashes, 0, "{kind}/{nprocs}p");
}

/// Tiny SOR runs 4 iterations of 2 barriers plus a final one: 9 barriers.
/// Barrier 5 is mid-run — past several checkpoints, with work left to redo.
const MID_RUN: u64 = 5;

#[test]
fn crashed_runs_recover_equivalently_across_the_matrix_at_4_procs() {
    for kind in ImplKind::all() {
        assert_equivalent(
            kind,
            4,
            FaultPlan::KillAt {
                node: 1,
                barrier: MID_RUN,
            },
        );
    }
}

#[test]
fn crashed_runs_recover_equivalently_across_the_matrix_at_1_proc() {
    for kind in ImplKind::all() {
        assert_equivalent(
            kind,
            1,
            FaultPlan::KillAt {
                node: 0,
                barrier: MID_RUN,
            },
        );
    }
}

#[test]
fn killing_the_last_arriving_node_at_the_first_barrier_recovers() {
    // Barrier 0 exercises recovery from the initial cut: the only
    // checkpoint is the pre-run image.
    for kind in [ImplKind::lrc_diff(), ImplKind::ec_time()] {
        assert_equivalent(
            kind,
            4,
            FaultPlan::KillAt {
                node: 3,
                barrier: 0,
            },
        );
    }
}

#[test]
fn checkpoint_images_and_rollback_notices_survive_the_channel_transport() {
    // Under the channel transport every replica receives the checkpoint
    // images and the rollback notice out of band and verifies count and
    // XOR-FNV fingerprint against the senders' totals at finish (an assert
    // inside the transport, so reaching the report is the proof).
    let report = sor(
        ImplKind::lrc_diff(),
        4,
        RunOpts {
            transport: TransportKind::Channel,
            fault: FaultPlan::KillAt {
                node: 2,
                barrier: MID_RUN,
            },
        },
    );
    assert!(report.verified);
    assert_eq!(report.recovery.crashes, 1);
    assert_eq!(report.wire.replicas_verified, 4);
    assert!(
        report.wire.ckpt_frames > 0,
        "no checkpoint crossed the wire"
    );
    assert_eq!(report.wire.rollback_frames, 1);
}

#[test]
fn checkpoint_images_and_rollback_notices_survive_the_socket_transport() {
    let report = sor(
        ImplKind::hlrc_diff(),
        2,
        RunOpts {
            transport: TransportKind::SocketLocal(1),
            fault: FaultPlan::KillAt {
                node: 0,
                barrier: MID_RUN,
            },
        },
    );
    assert!(report.verified);
    assert_eq!(report.recovery.crashes, 1);
    assert_eq!(report.wire.replicas_verified, 1);
    assert!(
        report.wire.ckpt_frames > 0,
        "no checkpoint crossed the wire"
    );
    assert_eq!(report.wire.rollback_frames, 1);
}
