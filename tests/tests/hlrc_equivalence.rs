//! Equivalence guarantees for the layered LRC protocol family.
//!
//! Two classes of pins:
//!
//! * **Golden byte-identity** — the homeless (`LRC-*`) policy of the layered
//!   engine must produce output byte-identical to the pre-refactor monolithic
//!   engine: region contents, `TrafficReport`, and per-node statistics, on
//!   the seeded deterministic trace and on a barrier-structured application,
//!   at 1 and at 4 processors.  The golden files under `tests/golden/` were
//!   blessed from the pre-refactor engine.
//! * **HLRC content equivalence** — the home-based policy moves data
//!   differently (eager flush to a static home, whole-page fetch from one
//!   node) but must converge to the same memory contents as homeless LRC.

use dsm_apps::{run_app, App, Scale};
use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
};
use dsm_mem::testutil::TestRng as Rng;
use dsm_sim::MsgKind;
use dsm_tests::{canon_app, canon_run, check_golden, golden_trace};

/// The homeless LRC engine reproduces the pre-refactor engine byte for byte
/// on the seeded trace: contents, traffic, and per-node stats, at 1 and 4
/// processors, under all three LRC implementations.
#[test]
fn homeless_lrc_matches_pre_refactor_golden_trace() {
    for nprocs in [1usize, 4] {
        let mut found = String::new();
        for kind in [
            ImplKind::lrc_ci(),
            ImplKind::lrc_time(),
            ImplKind::lrc_diff(),
        ] {
            let (result, regions) = golden_trace(kind, nprocs);
            found.push_str(&canon_run(kind, nprocs, &result, &regions));
        }
        check_golden(&format!("homeless_lrc_trace_p{nprocs}.txt"), &found);
    }
}

/// Same pin on a real application: SOR under LRC is barrier-structured, so
/// its report is deterministic at any processor count.
#[test]
fn homeless_lrc_matches_pre_refactor_golden_sor() {
    for nprocs in [1usize, 4] {
        let mut found = String::new();
        for kind in [
            ImplKind::lrc_ci(),
            ImplKind::lrc_time(),
            ImplKind::lrc_diff(),
        ] {
            let report = run_app(App::Sor, kind, nprocs, Scale::Tiny);
            assert!(report.verified);
            found.push_str(&canon_app(&report));
        }
        check_golden(&format!("homeless_lrc_sor_p{nprocs}.txt"), &found);
    }
}

/// Every paper application runs under every home-based implementation and
/// matches the sequential output — and since the homeless implementations
/// match it too (`all_apps_all_impls`), the final region contents of HLRC and
/// homeless LRC agree on every app.
#[test]
fn hlrc_runs_every_app_and_matches_homeless_contents() {
    for app in App::ALL {
        for kind in ImplKind::hlrc_all() {
            let hlrc = run_app(app, kind, 4, Scale::Tiny);
            assert!(hlrc.verified, "{app} under {kind} diverged from sequential");
            assert!(hlrc.time.as_nanos() > 0, "{app} under {kind} took no time");
        }
    }
}

/// A randomly generated multi-writer program — several nodes write disjoint
/// word ranges of the *same* pages between barriers — produces identical
/// final contents under the homeless and the home-based policy.  (The two
/// policies share the ordering layer; only data movement differs.)
#[test]
fn hlrc_contents_match_homeless_on_random_false_sharing_programs() {
    for seed in 0..8 {
        let mut rng = Rng::new(seed + 900);
        let nprocs = 4;
        let elems = 2048usize; // two pages of u32, both falsely shared
        let phases = rng.in_range(2, 5);
        let writes: Vec<(usize, usize, u32)> = (0..phases * 8)
            .map(|_| (rng.below(4), rng.below(elems / 4), rng.next_u64() as u32))
            .collect();

        let mut reference: Option<Vec<u32>> = None;
        for kind in [ImplKind::lrc_diff(), ImplKind::hlrc_diff()] {
            let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).unwrap();
            let region = dsm.alloc_array::<u32>("fs", elems, BlockGranularity::Word);
            let writes = writes.clone();
            let phases_per_chunk = writes.len() / phases.max(1);
            let result = dsm.run(|ctx| {
                let me = ctx.node();
                let n = ctx.nprocs();
                // Interleaved quarters: node q owns elements where
                // (idx / 16) % n == q, so every page is written by every
                // node (maximal false sharing) yet the program is race-free.
                for phase in writes.chunks(phases_per_chunk.max(1)) {
                    for &(proc, at, val) in phase {
                        if proc != me {
                            continue;
                        }
                        let chunk = at / 16;
                        let idx = ((chunk * n + me) * 16 + at % 16) % elems;
                        ctx.set(region, idx, val);
                    }
                    ctx.barrier(BarrierId::new(0));
                    let mut sum = 0u64;
                    for i in 0..elems {
                        sum = sum.wrapping_add(ctx.get(region, i) as u64);
                    }
                    assert!(sum != u64::MAX);
                    ctx.barrier(BarrierId::new(1));
                }
            });
            let finals = result.final_array(region);
            match &reference {
                None => reference = Some(finals),
                Some(expected) => {
                    assert_eq!(
                        expected, &finals,
                        "seed {seed}: contents diverged under {kind}"
                    )
                }
            }
        }
    }
}

/// The multi-writer false-sharing scenario the home-based design targets:
/// four nodes write disjoint quarters of one page each phase, then everyone
/// reads the page.  Homeless LRC pays one round trip per concurrent writer
/// at every miss; HLRC pays one flush per remote release and exactly one
/// round trip per miss, so it moves strictly fewer data messages per miss
/// (and in total).
fn false_sharing_run(kind: ImplKind) -> RunResult {
    let nprocs = 4;
    let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).unwrap();
    let region = dsm.alloc_array::<u32>("page", 1024, BlockGranularity::Word);
    dsm.run(|ctx| {
        let me = ctx.node();
        let quarter = 1024 / ctx.nprocs();
        for phase in 0..4u32 {
            ctx.acquire(LockId::new(me as u32), LockMode::Exclusive);
            for k in 0..quarter {
                ctx.set(region, me * quarter + k, phase * 100 + me as u32 + k as u32);
            }
            ctx.release(LockId::new(me as u32));
            ctx.barrier(BarrierId::new(0));
            let mut sum = 0u64;
            for i in 0..1024 {
                sum = sum.wrapping_add(ctx.get(region, i) as u64);
            }
            assert!(sum != u64::MAX);
            ctx.barrier(BarrierId::new(1));
        }
    })
}

#[test]
fn hlrc_needs_fewer_messages_per_miss_under_false_sharing() {
    for (lrc_kind, hlrc_kind) in [
        (ImplKind::lrc_diff(), ImplKind::hlrc_diff()),
        (ImplKind::lrc_time(), ImplKind::hlrc_time()),
        (ImplKind::lrc_ci(), ImplKind::hlrc_ci()),
    ] {
        let lrc = false_sharing_run(lrc_kind);
        let hlrc = false_sharing_run(hlrc_kind);
        assert_eq!(
            lrc.traffic.access_misses, hlrc.traffic.access_misses,
            "{lrc_kind} vs {hlrc_kind}: the invalidate protocol is shared, misses must agree"
        );
        assert!(lrc.traffic.access_misses > 0);
        let per_miss =
            |r: &RunResult| r.traffic.data_messages as f64 / r.traffic.access_misses as f64;
        assert!(
            per_miss(&hlrc) < per_miss(&lrc),
            "{hlrc_kind} should need fewer data messages per miss than {lrc_kind} \
             ({} vs {} data messages over {} misses)",
            hlrc.traffic.data_messages,
            lrc.traffic.data_messages,
            lrc.traffic.access_misses,
        );
        // Stronger: even counting the eager home flushes, total data traffic
        // is lower, because every homeless miss pays 3 concurrent writers.
        assert!(
            hlrc.traffic.data_messages < lrc.traffic.data_messages,
            "{hlrc_kind}: {} data msgs should undercut {lrc_kind}: {}",
            hlrc.traffic.data_messages,
            lrc.traffic.data_messages,
        );
    }
}

/// HLRC flushes are data-reply-class traffic recorded at release time: a
/// remote writer's release produces data-reply messages even before any
/// reader misses.
#[test]
fn hlrc_flushes_are_data_reply_traffic_at_release() {
    let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::hlrc_diff(), 2)).unwrap();
    let region = dsm.alloc_array::<u32>("r", 1024, BlockGranularity::Word);
    let result = dsm.run(|ctx| {
        // Page 0's round-robin home is node 0, so only node 1's publish
        // crosses the network; nobody ever reads remotely.
        if ctx.node() == 1 {
            ctx.set(region, 0, 7);
        }
        ctx.barrier(BarrierId::new(0));
    });
    let flusher = result.stats.node(1);
    assert_eq!(flusher.messages_of(MsgKind::DataReply), 1);
    assert_eq!(flusher.messages_of(MsgKind::DataRequest), 0);
    assert_eq!(result.stats.node(0).messages_of(MsgKind::DataReply), 0);
    assert_eq!(result.final_at(region, 0), 7);
}

/// The twelve-member matrix is what the family exposes.
#[test]
fn family_is_twelve_wide() {
    assert_eq!(ImplKind::all().len(), 12);
    for model in [Model::Hlrc, Model::Adaptive] {
        assert_eq!(
            ImplKind::all()
                .iter()
                .filter(|k| k.model() == model)
                .count(),
            3
        );
    }
}
