//! Determinism of the adaptive data policy.
//!
//! The adaptive controller decides migrations from entitlement-visible
//! records only (window counters recorded under region write locks, closed
//! at barrier commits while every node is blocked), so the migration trace —
//! and everything downstream of it: traffic, sharing statistics, contents —
//! must be a pure function of the program and the processor count.  These
//! tests pin that on the mixed-sharing workload by running it repeatedly and
//! comparing byte-for-byte canonical reports.
//!
//! The static policies' cost accounting is separately pinned against
//! committed golden files (`typed_api_equivalence`), which this PR keeps
//! byte-identical; here the static LRC implementations ride along in the
//! repeatability loop so a regression in either family is caught at the
//! same place.

use dsm_apps::mixed::{self, MixedParams};
use dsm_core::{ImplKind, PageMode, RunResult};

/// Canonical report of everything the adaptive policy decides or feeds on:
/// the migration trace, the per-region sharing rows, the aggregate traffic
/// and the final contents fingerprint.
fn canon(result: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("fnv={:016x}\n", result.wire.master_fnv));
    out.push_str(&format!("traffic: {}\n", result.traffic));
    for c in &result.migrations {
        out.push_str(&format!(
            "migration eval={} region={} page={} mode={}\n",
            c.eval, c.region, c.page, c.mode
        ));
    }
    for s in &result.sharing {
        out.push_str(&format!(
            "sharing region={} pages={} publishes={} misses={} diff_bytes={} writers={}\n",
            s.region, s.pages, s.publishes, s.misses, s.diff_bytes, s.distinct_writers
        ));
    }
    out
}

fn kinds_under_test() -> Vec<ImplKind> {
    let mut kinds = ImplKind::adaptive_all().to_vec();
    kinds.extend(ImplKind::lrc_all());
    kinds
}

/// Three repeated runs at 1 and 4 processors produce identical migration
/// traces, sharing rows, traffic totals and contents.
#[test]
fn mixed_workload_reports_are_identical_across_runs() {
    let p = MixedParams::tiny();
    for nprocs in [1usize, 4] {
        for &kind in &kinds_under_test() {
            let mut first: Option<String> = None;
            for run in 0..3 {
                let (result, ok) = mixed::run(kind, nprocs, &p);
                assert!(ok, "{kind}: mixed contents mismatch at {nprocs} procs");
                let found = canon(&result);
                match &first {
                    None => first = Some(found),
                    Some(want) => assert_eq!(
                        want, &found,
                        "{kind}: run {run} diverged from run 0 at {nprocs} procs"
                    ),
                }
            }
        }
    }
}

/// The migration trace is also stable across *processor counts* in shape:
/// every single-writer page pins, and at one processor nothing else ever
/// fires (reads of self-written data never miss, so no pin breaks and no
/// homes).
#[test]
fn single_processor_runs_only_pin() {
    let p = MixedParams::tiny();
    for kind in ImplKind::adaptive_all() {
        let (result, ok) = mixed::run(kind, 1, &p);
        assert!(ok, "{kind}: mixed contents mismatch at 1 proc");
        assert!(
            !result.migrations.is_empty(),
            "{kind}: the lone writer's pages should pin"
        );
        assert!(
            result
                .migrations
                .iter()
                .all(|c| matches!(c.mode, PageMode::Pinned(0))),
            "{kind}: unexpected non-pin migration at 1 proc: {:?}",
            result.migrations
        );
    }
}

/// The decisions the policy feeds on are identical whether or not the
/// adaptive policy is the one running: the sharing rows of a static run
/// match the adaptive run's rows for the same program (the accumulators are
/// recorded by the shared ordering core, not by the policy).
#[test]
fn sharing_statistics_are_policy_independent_until_migration() {
    // Compare LRC-diff and HLRC-diff (no migrations ever fire, so the
    // accumulators see the exact same schedule of publishes and misses).
    let p = MixedParams::tiny();
    let (lrc, ok_a) = mixed::run(ImplKind::lrc_diff(), 4, &p);
    let (hlrc, ok_b) = mixed::run(ImplKind::hlrc_diff(), 4, &p);
    assert!(ok_a && ok_b);
    let rows = |r: &RunResult| {
        r.sharing
            .iter()
            .map(|s| {
                format!(
                    "{} {} {} {} {}",
                    s.region, s.pages, s.publishes, s.misses, s.distinct_writers
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(rows(&lrc), rows(&hlrc));
}
