//! The KV tier must serve the same answers whatever protocol carries it:
//! one seeded op trace replayed across {EC-time, LRC-diff, HLRC-diff,
//! ALRC-diff} × {simulated, channel} × {1, 4} processors must land on
//! identical final bucket contents and identical get-result streams.
//!
//! Determinism strategy: the trace is partitioned by shard ownership.  With
//! *static* ownership (processor `p` owns shard `s` iff `s % nprocs == p`)
//! each shard's op sequence is a fixed subsequence of the trace regardless
//! of processor count, so the per-shard get-fingerprint chains are
//! comparable across every configuration.  The *rotating* variant reassigns
//! ownership every chunk (barrier-separated), forcing the shards — data,
//! locks and all — to migrate between nodes mid-run; chains fragment across
//! workers there, so that variant compares final contents and the summed
//! op-outcome counters instead, which the per-shard sequences still fully
//! determine.
//!
//! A separate conflict test aims every processor at the same small key set
//! (no ownership, genuine cas/delete races at 4 procs) and checks the
//! invariants racing cannot break: every surviving value is internally
//! consistent, every cas resolved exactly one way, and the store never
//! reports an impossible outcome.

use dsm_core::{BarrierId, Dsm, DsmConfig, ImplKind, TransportKind};
use dsm_kvservice::workload::{gen_trace, KeySampler, MixSpec};
use dsm_kvservice::{fill_value, KvConfig, KvOp, KvScratch, KvStats, KvStore, ReadConsistency};
use std::sync::Mutex;

/// The four headline implementations the suite replays across.
fn kinds() -> [ImplKind; 4] {
    [
        ImplKind::ec_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_diff(),
        ImplKind::adaptive_diff(),
    ]
}

fn transports() -> [TransportKind; 2] {
    [TransportKind::Simulated, TransportKind::Channel]
}

/// Ops applied together between barriers; ownership rotates per chunk in
/// the rotating variant.
const CHUNK: usize = 256;

/// What one configuration's run boiled down to.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    contents_fnv: u64,
    /// Summed across workers: (gets, hits, puts, inserted, updated, cas_ok,
    /// cas_miss, cas_absent, deletes, deleted).
    counters: [u64; 10],
}

fn summed(stats: &[KvStats]) -> [u64; 10] {
    let mut t = [0u64; 10];
    for s in stats {
        for (slot, v) in t.iter_mut().zip([
            s.gets,
            s.hits,
            s.puts,
            s.inserted,
            s.updated,
            s.cas_ok,
            s.cas_miss,
            s.cas_absent,
            s.deletes,
            s.deleted,
        ]) {
            *slot += v;
        }
    }
    t
}

/// Replays `trace` under one configuration with shard-ownership
/// partitioning.  Returns the run outcome plus the canonical per-shard get
/// chains (static ownership only; `None` when rotating).
fn replay(
    kind: ImplKind,
    transport: TransportKind,
    nprocs: usize,
    trace: &[KvOp],
    rotate: bool,
) -> (Outcome, Option<Vec<u64>>) {
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = transport;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let store = KvStore::alloc(&mut dsm, kind.model(), KvConfig::small());
    let st = store.clone();
    let per_proc: Mutex<Vec<Option<KvStats>>> = Mutex::new(vec![None; nprocs]);
    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let mut scratch = KvScratch::new(st.config());
        let mut stats = KvStats::new(st.config().shards());
        let mut owned: Vec<KvOp> = Vec::with_capacity(CHUNK);
        for (c, chunk) in trace.chunks(CHUNK).enumerate() {
            let twist = if rotate { c } else { 0 };
            owned.clear();
            owned.extend(
                chunk
                    .iter()
                    .filter(|op| (st.shard_of(op.key()) + twist) % nprocs == me)
                    .copied(),
            );
            st.apply_batch(ctx, &owned, ReadConsistency::Lock, &mut scratch, &mut stats);
            // The chunk boundary is a barrier: it hands shard ownership to
            // the next chunk's owner and closes the wire epoch.
            ctx.barrier(BarrierId::new(0));
        }
        ctx.barrier(BarrierId::new(1));
        per_proc.lock().unwrap()[me] = Some(stats);
    });
    let stats: Vec<KvStats> = per_proc
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|s| s.expect("every worker reported"))
        .collect();
    let chains = (!rotate).then(|| {
        (0..store.config().shards())
            .map(|s| stats[s % nprocs].get_fnv[s])
            .collect()
    });
    let outcome = Outcome {
        contents_fnv: store.contents_fnv(&result),
        counters: summed(&stats),
    };
    (outcome, chains)
}

fn balanced_trace(len: usize) -> Vec<KvOp> {
    let sampler = KeySampler::zipf(500, 0.99);
    gen_trace(0xD15C_0BA1, len, &sampler, &MixSpec::ALL[1])
}

#[test]
fn one_trace_many_protocols_static_ownership() {
    let trace = balanced_trace(4096);
    let mut baseline: Option<(Outcome, Vec<u64>)> = None;
    for kind in kinds() {
        for transport in transports() {
            for nprocs in [1usize, 4] {
                let (outcome, chains) = replay(kind, transport.clone(), nprocs, &trace, false);
                let chains = chains.expect("static ownership yields chains");
                assert_ne!(outcome.contents_fnv, 0);
                match &baseline {
                    None => baseline = Some((outcome, chains)),
                    Some((base_out, base_chains)) => {
                        assert_eq!(
                            &outcome,
                            base_out,
                            "{kind}/{}/{nprocs}p diverged from the baseline outcome",
                            transport.label(),
                        );
                        assert_eq!(
                            &chains,
                            base_chains,
                            "{kind}/{}/{nprocs}p: get-result streams differ",
                            transport.label(),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn one_trace_many_protocols_rotating_ownership() {
    // Shards migrate between owners every chunk: the protocols genuinely
    // move the data, and every configuration must still converge to the
    // same contents and op outcomes.
    let trace = balanced_trace(4096);
    let mut baseline: Option<Outcome> = None;
    for kind in kinds() {
        for transport in transports() {
            for nprocs in [1usize, 4] {
                let (outcome, _) = replay(kind, transport.clone(), nprocs, &trace, true);
                assert_ne!(outcome.contents_fnv, 0);
                match &baseline {
                    None => baseline = Some(outcome),
                    Some(base) => assert_eq!(
                        &outcome,
                        base,
                        "{kind}/{}/{nprocs}p diverged under rotating ownership",
                        transport.label(),
                    ),
                }
            }
        }
    }
}

/// All four processors fire cas/put/delete at the same 32 keys with no
/// ownership discipline: the interleaving is a real race, so exact outcomes
/// vary — the invariants must not.
#[test]
fn contended_cas_delete_interleavings_keep_invariants() {
    const KEYS: u64 = 32;
    const NPROCS: usize = 4;
    for kind in kinds() {
        for transport in transports() {
            let mut cfg = DsmConfig::with_procs(kind, NPROCS);
            cfg.transport = transport.clone();
            let mut dsm = Dsm::new(cfg).expect("valid config");
            let store = KvStore::alloc(&mut dsm, kind.model(), KvConfig::small());
            let st = store.clone();
            let per_proc: Mutex<Vec<Option<KvStats>>> = Mutex::new(vec![None; NPROCS]);
            let final_values: Mutex<Vec<(u64, Vec<u64>)>> = Mutex::new(Vec::new());
            dsm.run(|ctx| {
                let me = ctx.node();
                let sampler = KeySampler::uniform(KEYS);
                // Write-heavy: plenty of put/cas/delete on 32 hot keys.
                let trace = gen_trace(100 + me as u64, 1024, &sampler, &MixSpec::ALL[2]);
                let mut scratch = KvScratch::new(st.config());
                let mut stats = KvStats::new(st.config().shards());
                for chunk in trace.chunks(64) {
                    st.apply_batch(ctx, chunk, ReadConsistency::Lock, &mut scratch, &mut stats);
                }
                ctx.barrier(BarrierId::new(0));
                // One node reads everything back, sequentially consistent,
                // after the barrier ordered every write.
                if me == 0 {
                    let words = st.config().value_words;
                    let mut out = vec![0u64; words];
                    let mut survivors = Vec::new();
                    for key in 1..=KEYS {
                        if st.get_into(ctx, key, ReadConsistency::Lock, &mut out) {
                            survivors.push((key, out.clone()));
                        }
                    }
                    *final_values.lock().unwrap() = survivors;
                }
                ctx.barrier(BarrierId::new(1));
                per_proc.lock().unwrap()[me] = Some(stats);
            });
            let stats: Vec<KvStats> = per_proc
                .into_inner()
                .unwrap()
                .into_iter()
                .map(|s| s.expect("every worker reported"))
                .collect();
            let sums = summed(&stats);
            let [gets, hits, puts, inserted, updated, cas_ok, cas_miss, cas_absent, deletes, deleted] =
                sums;
            let label = transport.label();
            // Every op resolved exactly one way.
            assert_eq!(
                gets + puts + cas_ok + cas_miss + cas_absent + deletes,
                (1024 * NPROCS) as u64,
                "{kind}/{label}: ops lost or double-counted"
            );
            assert!(hits <= gets, "{kind}/{label}: more hits than gets");
            assert_eq!(
                puts,
                inserted + updated,
                "{kind}/{label}: a put neither inserted nor updated"
            );
            assert!(deleted <= deletes, "{kind}/{label}: phantom deletes");
            // The race is real: all three cas outcomes and some deletes
            // actually occur at this contention level.
            assert!(
                cas_ok > 0 && cas_miss > 0 && cas_absent > 0 && deleted > 0,
                "{kind}/{label}: contention did not exercise the conflict paths \
                 (cas {cas_ok}/{cas_miss}/{cas_absent}, deleted {deleted})"
            );
            // Whatever interleaving won, every surviving value is one some
            // put/cas actually wrote: word 0 names the seed and the
            // remaining words must be that seed's fill pattern.
            let survivors = final_values.into_inner().unwrap();
            let words = store.config().value_words;
            for (key, value) in &survivors {
                let mut expect = vec![0u64; words];
                fill_value(*key, value[0], &mut expect);
                assert_eq!(
                    value, &expect,
                    "{kind}/{label}: key {key} holds a torn value"
                );
                assert!(
                    value[0] <= 0xf,
                    "{kind}/{label}: key {key} seed out of window"
                );
            }
        }
    }
}
