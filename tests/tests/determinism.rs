//! Multi-processor output determinism for the LRC protocol family.
//!
//! PR 2 observed that `traffic`/table output differed between runs at
//! `--procs > 1`.  The cause was not aggregation order (reports are built in
//! node-id order) but two races in the engine's shared-state approximation:
//! freshness checks read the racy per-page `latest` high-water marks, and
//! responder counts read `last_publisher` state that concurrent *unentitled*
//! publishes could overwrite.  Both decisions now read only
//! entitlement-visible publish-history records, so for data-race-free,
//! barrier-deterministic programs every counter in the report is a pure
//! function of the program.  These tests pin that at 4 processors for all
//! six LRC-family implementations.
//!
//! (EC programs synchronize through contended locks, whose grant *order* is
//! genuinely scheduling-dependent; their totals are covered by the
//! cross-implementation equivalence tests instead.)

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;
use dsm_sim::MsgKind;
use dsm_tests::{canon_node_stats, canon_run, golden_trace};

fn lrc_family() -> [ImplKind; 6] {
    [
        ImplKind::lrc_ci(),
        ImplKind::lrc_time(),
        ImplKind::lrc_diff(),
        ImplKind::hlrc_ci(),
        ImplKind::hlrc_time(),
        ImplKind::hlrc_diff(),
    ]
}

/// The seeded trace (single-writer pages, a falsely shared page, span and
/// scalar accesses) reports identically on repeated 4-processor runs.
#[test]
fn trace_reports_are_identical_across_runs() {
    for kind in lrc_family() {
        let mut first: Option<String> = None;
        for run in 0..3 {
            let (result, regions) = golden_trace(kind, 4);
            let found = canon_run(kind, 4, &result, &regions);
            match &first {
                None => first = Some(found),
                Some(want) => assert_eq!(
                    want, &found,
                    "{kind}: run {run} diverged from run 0 at 4 processors"
                ),
            }
        }
    }
}

/// A real application: SOR under the LRC family is barrier-structured, so
/// traffic and per-node statistics are deterministic at any `--procs`.
#[test]
fn sor_reports_are_identical_across_runs() {
    for kind in lrc_family() {
        let mut first: Option<String> = None;
        for run in 0..3 {
            let report = run_app(App::Sor, kind, 4, Scale::Tiny);
            assert!(report.verified);
            let mut found = format!("traffic: {}\n", report.traffic);
            for i in 0..report.stats.num_nodes() {
                canon_node_stats(&mut found, i, report.stats.node(i));
            }
            match &first {
                None => first = Some(found),
                Some(want) => assert_eq!(
                    want, &found,
                    "{kind}: SOR run {run} diverged from run 0 at 4 processors"
                ),
            }
        }
    }
}

/// Reports aggregate in node-id order: node `i` of the cluster statistics is
/// processor `i`, and the totals are the node-wise sums — no map/hash
/// iteration order is involved anywhere in a report.
#[test]
fn reports_aggregate_in_node_id_order() {
    let (result, _) = golden_trace(ImplKind::lrc_diff(), 4);
    assert_eq!(result.stats.num_nodes(), 4);
    assert_eq!(result.node_times.len(), 4);
    let total = result.stats.total();
    for kind in MsgKind::ALL {
        let sum: u64 = (0..4).map(|i| result.stats.node(i).messages_of(kind)).sum();
        assert_eq!(total.messages_of(kind), sum);
    }
    assert_eq!(result.traffic.messages, total.messages());
    assert_eq!(result.traffic.bytes, total.bytes());
}
