//! Qualitative "shape" checks against the paper's findings: who wins, and in
//! which direction the traffic differences go.  Absolute numbers differ (the
//! substrate is a simulator, not the authors' DECstation/ATM testbed), but
//! these relationships are what the paper's conclusions rest on.

use dsm_apps::{run_app, App, Scale};
use dsm_core::ImplKind;

const PROCS: usize = 8;

/// Section 7.2, 3D-FFT: the data bound to a lock spans several pages, so EC's
/// update protocol needs far fewer messages (and fewer access misses) than
/// LRC's per-page invalidate protocol.  (The resulting execution-time win for
/// EC only materialises at the paper's full problem size; see EXPERIMENTS.md.)
#[test]
fn fft_favours_ec_update_protocol() {
    let ec = run_app(App::Fft3d, ImplKind::ec_ci(), PROCS, Scale::Small);
    let lrc = run_app(App::Fft3d, ImplKind::lrc_diff(), PROCS, Scale::Small);
    assert!(ec.verified && lrc.verified);
    assert!(
        ec.traffic.messages < lrc.traffic.messages,
        "EC messages ({}) should be below LRC messages ({})",
        ec.traffic.messages,
        lrc.traffic.messages
    );
    assert!(
        ec.traffic.access_misses == 0,
        "EC never takes access misses"
    );
    assert!(
        lrc.traffic.access_misses > 0,
        "LRC fetches the transpose page by page"
    );
}

/// Section 7.2, Water and Barnes-Hut: LRC's page-grain prefetching and the
/// absence of per-object read locks make it faster than EC.
#[test]
fn water_and_barnes_favour_lrc() {
    for app in [App::Water, App::BarnesHut] {
        let ec = run_app(app, ImplKind::ec_time(), PROCS, Scale::Small);
        let lrc = run_app(app, ImplKind::lrc_diff(), PROCS, Scale::Small);
        assert!(ec.verified && lrc.verified, "{app} verification");
        assert!(
            lrc.time < ec.time,
            "{app}: LRC ({:.2}s) should beat EC ({:.2}s)",
            lrc.time.as_secs_f64(),
            ec.time.as_secs_f64()
        );
    }
    // Barnes-Hut is the extreme case: every cell/body read needs a read-only
    // lock under EC, so LRC needs far fewer messages (prefetching).
    let ec = run_app(App::BarnesHut, ImplKind::ec_time(), PROCS, Scale::Small);
    let lrc = run_app(App::BarnesHut, ImplKind::lrc_diff(), PROCS, Scale::Small);
    assert!(
        lrc.traffic.messages < ec.traffic.messages,
        "Barnes-Hut: LRC should need fewer messages (prefetching, no read locks)"
    );
}

/// Section 8.2, IS: the shared bucket array is migratory, so diffing sends
/// multiple overlapping diffs while timestamping sends each block once.
#[test]
fn migratory_is_data_makes_diffing_send_more() {
    let time = run_app(App::IntegerSort, ImplKind::ec_time(), PROCS, Scale::Small);
    let diff = run_app(App::IntegerSort, ImplKind::ec_diff(), PROCS, Scale::Small);
    assert!(time.verified && diff.verified);
    assert!(
        diff.traffic.bytes > time.traffic.bytes,
        "EC-diff bytes ({}) should exceed EC-time bytes ({}) for migratory data",
        diff.traffic.bytes,
        time.traffic.bytes
    );
}

/// Section 8.1: the write-trapping mechanisms do fundamentally different
/// work.  LRC-ci pays per-store instrumentation plus hierarchical page-bit
/// scans and never takes a write fault; LRC-diff pays write faults, twin
/// copies and diff creations and executes no instrumented stores.
#[test]
fn trapping_mechanisms_do_different_work() {
    let ci = run_app(App::Sor, ImplKind::lrc_ci(), PROCS, Scale::Small);
    let diff = run_app(App::Sor, ImplKind::lrc_diff(), PROCS, Scale::Small);
    assert!(ci.verified && diff.verified);
    let ci_total = ci.stats.total();
    let diff_total = diff.stats.total();
    assert!(ci_total.instrumented_writes > 0);
    assert!(ci_total.page_bits_checked > 0);
    assert_eq!(ci_total.write_faults, 0);
    assert!(diff_total.write_faults > 0);
    assert!(diff_total.diffs_created > 0);
    assert_eq!(diff_total.instrumented_writes, 0);
    // And the instrumentation overhead is proportional to the stores the
    // application actually performs.
    assert!(ci_total.instrumented_writes >= (ci_total.shared_accesses / 8));
}

/// Section 7.2, QS: false sharing within pages makes LRC transfer more data
/// than EC for the task-queue Quicksort.
#[test]
fn quicksort_false_sharing_makes_lrc_move_more_data() {
    let ec = run_app(App::Quicksort, ImplKind::ec_diff(), PROCS, Scale::Small);
    let lrc = run_app(App::Quicksort, ImplKind::lrc_time(), PROCS, Scale::Small);
    assert!(ec.verified && lrc.verified);
    assert!(
        lrc.traffic.bytes > ec.traffic.bytes,
        "LRC bytes ({}) should exceed EC bytes ({}) for QS",
        lrc.traffic.bytes,
        ec.traffic.bytes
    );
}
